"""Output-buffered reference switch."""

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.outbuf import OutputBufferedSwitch
from repro.traffic.base import NO_ARRIVAL


def make_switch(**kw):
    defaults = dict(n_ports=4, outbuf_capacity=8, warmup_slots=0, measure_slots=10)
    defaults.update(kw)
    return OutputBufferedSwitch(SimConfig(**defaults))


def no_arrivals(n=4):
    return np.full(n, NO_ARRIVAL, dtype=np.int64)


class TestOutbuf:
    def test_no_input_contention(self):
        # All inputs to distinct outputs: all depart in the same slot.
        switch = make_switch()
        switch.measuring = True
        switch.step(0, np.array([0, 1, 2, 3]))
        assert switch.forwarded == 4
        assert switch.latency.mean == 1.0

    def test_fanin_absorbed_then_serialised(self):
        # Four packets to one output in one slot: all buffered, one
        # departs per slot.
        switch = make_switch()
        switch.measuring = True
        switch.step(0, np.zeros(4, dtype=np.int64))
        assert switch.forwarded == 1
        for slot in range(1, 4):
            switch.step(slot, no_arrivals())
        assert switch.forwarded == 4
        assert switch.latency.max == 4.0

    def test_buffer_overflow_drops(self):
        switch = make_switch(outbuf_capacity=2)
        switch.measuring = True
        # 4 packets/slot to output 0, service 1/slot, capacity 2.
        for slot in range(5):
            switch.step(slot, np.zeros(4, dtype=np.int64))
        assert switch.dropped > 0

    def test_conservation(self):
        rng = np.random.default_rng(1)
        switch = make_switch()
        switch.measuring = True
        for slot in range(100):
            active = rng.random(4) < 0.8
            dst = rng.integers(0, 4, size=4)
            switch.step(slot, np.where(active, dst, NO_ARRIVAL))
        assert switch.offered == switch.forwarded + switch.total_queued() + switch.dropped

    def test_work_conserving(self):
        # A queued packet is always served — no idle output with backlog.
        switch = make_switch()
        switch.measuring = True
        switch.step(0, np.zeros(4, dtype=np.int64))
        queued_before = switch.total_queued()
        switch.step(1, no_arrivals())
        assert switch.total_queued() == queued_before - 1
