"""Single-FIFO input switch (HOL blocking model)."""

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.fifo_switch import FIFOSwitch
from repro.traffic.base import NO_ARRIVAL


def make_switch(**kw):
    defaults = dict(n_ports=4, voq_capacity=8, pq_capacity=16,
                    warmup_slots=0, measure_slots=10)
    defaults.update(kw)
    return FIFOSwitch(SimConfig(**defaults))


def no_arrivals(n=4):
    return np.full(n, NO_ARRIVAL, dtype=np.int64)


class TestFIFOSwitch:
    def test_uncontended_packet_forwarded(self):
        switch = make_switch()
        switch.measuring = True
        arrivals = no_arrivals()
        arrivals[0] = 3
        switch.step(0, arrivals)
        assert switch.forwarded == 1

    def test_hol_blocking_stalls_queue(self):
        """The defining pathology: a blocked head stalls packets behind
        it even when their outputs are idle."""
        switch = make_switch()
        switch.measuring = True
        # Slot 0: inputs 0 and 1 both send to output 0. One wins; input
        # 1's packet for the idle output 2 is stuck *behind* its head.
        a0 = no_arrivals()
        a0[0] = 0
        a0[1] = 0
        switch.step(0, a0)
        a1 = no_arrivals()
        a1[1] = 2  # queued behind the blocked head of input 1
        switch.step(1, a1)
        # After slot 1: input 1's head (dst 0) finally went or not, but
        # the packet for output 2 cannot have left before its head.
        total_fwd = switch.forwarded
        assert total_fwd <= 3
        # With VOQs the packet for output 2 would have departed in slot 1.

    def test_conservation(self):
        rng = np.random.default_rng(2)
        switch = make_switch()
        switch.measuring = True
        for slot in range(150):
            active = rng.random(4) < 0.7
            dst = rng.integers(0, 4, size=4)
            switch.step(slot, np.where(active, dst, NO_ARRIVAL))
        assert switch.offered == switch.forwarded + switch.total_queued() + switch.dropped

    def test_saturation_throughput_well_below_one(self):
        """Karol/Hluchyj/Morgan: uniform saturated FIFO throughput tends
        to 2 - sqrt(2) ~ 0.586 for large n; at n=8 it is ~0.6."""
        config = SimConfig(n_ports=8, voq_capacity=64, pq_capacity=64,
                           warmup_slots=500, measure_slots=3000)
        switch = FIFOSwitch(config)
        rng = np.random.default_rng(3)
        for slot in range(config.total_slots):
            if slot == config.warmup_slots:
                switch.measuring = True
            switch.step(slot, rng.integers(0, 8, size=8))  # load 1.0
        throughput = switch.forwarded / (8 * config.measure_slots)
        assert 0.5 < throughput < 0.72
