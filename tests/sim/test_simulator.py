"""End-to-end simulation driver."""

import numpy as np
import pytest

from repro.sim.config import SimConfig
from repro.sim.simulator import build_switch, run_simulation
from repro.sim.crossbar import InputQueuedSwitch
from repro.sim.fifo_switch import FIFOSwitch
from repro.sim.outbuf import OutputBufferedSwitch
from repro.traffic.trace import TraceReplay


def quick_config(**kw):
    defaults = dict(n_ports=4, warmup_slots=100, measure_slots=1000,
                    voq_capacity=32, pq_capacity=64, seed=7)
    defaults.update(kw)
    return SimConfig(**defaults)


class TestBuildSwitch:
    def test_outbuf_gets_dedicated_model(self):
        assert isinstance(build_switch(quick_config(), "outbuf"), OutputBufferedSwitch)

    def test_fifo_gets_dedicated_model(self):
        assert isinstance(build_switch(quick_config(), "fifo"), FIFOSwitch)

    def test_crossbar_for_everything_else(self):
        switch = build_switch(quick_config(), "lcf_central")
        assert isinstance(switch, InputQueuedSwitch)
        assert switch.scheduler.name == "lcf_central"

    def test_iterations_flow_from_config(self):
        switch = build_switch(quick_config(iterations=2), "pim")
        assert switch.scheduler.iterations == 2


class TestRunSimulation:
    def test_throughput_matches_load_when_stable(self):
        result = run_simulation(quick_config(), "lcf_central", load=0.5)
        assert result.throughput == pytest.approx(0.5, abs=0.05)
        assert result.dropped == 0

    def test_latency_at_low_load_is_near_minimum(self):
        result = run_simulation(quick_config(), "lcf_central", load=0.05)
        assert 1.0 <= result.mean_latency < 1.5

    def test_warmup_only_run_has_nan_throughput(self):
        # measure_slots=0 used to hit a ZeroDivisionError computing
        # throughput; an empty measurement window is NaN, not a crash.
        result = run_simulation(
            quick_config(warmup_slots=50, measure_slots=0), "lcf_central", load=0.5
        )
        assert np.isnan(result.throughput)
        assert np.isnan(result.mean_latency)
        assert result.forwarded == 0 and result.offered == 0

    def test_deterministic_given_seed(self):
        first = run_simulation(quick_config(), "islip", load=0.7)
        second = run_simulation(quick_config(), "islip", load=0.7)
        assert first.mean_latency == second.mean_latency
        assert first.forwarded == second.forwarded

    def test_different_seed_changes_result(self):
        first = run_simulation(quick_config(seed=1), "islip", load=0.7)
        second = run_simulation(quick_config(seed=2), "islip", load=0.7)
        assert first.mean_latency != second.mean_latency

    def test_percentile_collection(self):
        result = run_simulation(
            quick_config(), "lcf_central", load=0.6, collect_percentiles=True
        )
        assert 50.0 in result.percentiles
        assert result.percentiles[50.0] <= result.percentiles[99.0]

    def test_service_collection(self):
        result = run_simulation(
            quick_config(), "lcf_central", load=0.6, collect_service=True
        )
        assert result.service_counts is not None
        assert result.service_counts.sum() == result.forwarded

    def test_custom_traffic_pattern_object(self):
        trace = np.full((50, 4), -1, dtype=np.int64)
        trace[:, 0] = 1  # input 0 sends to output 1 every slot
        result = run_simulation(
            quick_config(warmup_slots=0, measure_slots=50),
            "lcf_central",
            load=1.0,
            traffic=TraceReplay(trace),
        )
        assert result.forwarded == 50
        assert result.mean_latency == 1.0

    def test_relative_to(self):
        config = quick_config()
        crossbar = run_simulation(config, "lcf_central", load=0.8)
        reference = run_simulation(config, "outbuf", load=0.8)
        ratio = crossbar.relative_to(reference)
        assert ratio >= 1.0  # input queueing can't beat output queueing

    def test_row_serialisation(self):
        result = run_simulation(quick_config(), "pim", load=0.3)
        row = result.row()
        assert row["scheduler"] == "pim"
        assert row["load"] == 0.3
        assert isinstance(row["mean_latency"], float)

    def test_loss_rate(self):
        # Saturate a tiny-buffered FIFO switch to force drops.
        config = quick_config(voq_capacity=4, pq_capacity=4,
                              warmup_slots=0, measure_slots=500)
        result = run_simulation(config, "fifo", load=1.0)
        assert result.loss_rate > 0
