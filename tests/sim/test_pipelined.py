"""Pipelined-scheduler switch: the Section 1 pipelining claim."""

import numpy as np
import pytest

from repro.core.lcf_central import LCFCentralRR
from repro.sim.config import SimConfig
from repro.sim.pipelined import PipelinedSwitch
from repro.traffic.base import NO_ARRIVAL
from repro.traffic.bernoulli import BernoulliUniform


def make_switch(depth, **kw):
    defaults = dict(n_ports=4, voq_capacity=32, pq_capacity=64,
                    warmup_slots=0, measure_slots=100)
    defaults.update(kw)
    config = SimConfig(**defaults)
    return PipelinedSwitch(config, LCFCentralRR(config.n_ports), depth)


def no_arrivals(n=4):
    return np.full(n, NO_ARRIVAL, dtype=np.int64)


def run_loaded(depth, load, slots=3000, n=8):
    config = SimConfig(n_ports=n, voq_capacity=64, pq_capacity=200,
                       warmup_slots=500, measure_slots=slots)
    switch = PipelinedSwitch(config, LCFCentralRR(n), depth)
    pattern = BernoulliUniform(n, load, seed=5)
    for slot in range(config.total_slots):
        if slot == config.warmup_slots:
            switch.measuring = True
        switch.step(slot, pattern.arrivals())
    return switch


class TestPipelineMechanics:
    def test_depth_zero_forwards_same_slot(self):
        switch = make_switch(0)
        switch.measuring = True
        arrivals = no_arrivals()
        arrivals[0] = 1
        switch.step(0, arrivals)
        assert switch.forwarded == 1
        assert switch.latency.mean == 1.0

    def test_depth_d_delays_first_departure(self):
        for depth in (1, 2, 3):
            switch = make_switch(depth)
            switch.measuring = True
            arrivals = no_arrivals()
            arrivals[0] = 1
            switch.step(0, arrivals)
            for slot in range(1, depth):
                switch.step(slot, no_arrivals())
                assert switch.forwarded == 0
            switch.step(depth, no_arrivals())
            assert switch.forwarded == 1
            assert switch.latency.mean == depth + 1

    def test_no_double_grant_of_in_flight_packet(self):
        # One packet, depth 2: the slot-1 schedule must not grant it again.
        switch = make_switch(2)
        switch.measuring = True
        arrivals = no_arrivals()
        arrivals[0] = 1
        switch.step(0, arrivals)
        for slot in range(1, 6):
            switch.step(slot, no_arrivals())
        assert switch.forwarded == 1  # exactly once

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            make_switch(-1)

    def test_conservation_through_pipeline(self):
        rng = np.random.default_rng(6)
        switch = make_switch(3, measure_slots=300)
        switch.measuring = True
        for slot in range(300):
            active = rng.random(4) < 0.7
            dst = rng.integers(0, 4, size=4)
            switch.step(slot, np.where(active, dst, NO_ARRIVAL))
        in_flight = int(switch._reserved.sum())
        assert switch.offered == (
            switch.forwarded + switch.total_queued() + switch.dropped
        )
        assert in_flight <= 3 * 4  # at most depth x n grants in flight


class TestPaperClaim:
    """'These techniques do not reduce latency and the scheduling latency
    adds to the overall switch forwarding latency' — while throughput is
    unaffected."""

    def test_throughput_is_depth_independent(self):
        shallow = run_loaded(0, load=0.8)
        deep = run_loaded(3, load=0.8)
        assert shallow.forwarded == pytest.approx(deep.forwarded, rel=0.05)

    def test_latency_grows_by_exactly_the_depth_at_low_load(self):
        # At light load queueing is negligible; the pipeline depth is the
        # whole story.
        base = run_loaded(0, load=0.1).latency.mean
        for depth in (1, 3):
            delayed = run_loaded(depth, load=0.1).latency.mean
            assert delayed == pytest.approx(base + depth, abs=0.15)

    def test_latency_penalty_persists_at_high_load(self):
        base = run_loaded(0, load=0.9).latency.mean
        deep = run_loaded(2, load=0.9).latency.mean
        assert deep > base
