"""Queue structures: PQ, VOQ set, output queue."""

import pytest

from repro.sim.queues import OutputQueue, PacketQueue, VOQSet


class TestPacketQueue:
    def test_fifo_order(self):
        pq = PacketQueue(10)
        pq.push(3, 100)
        pq.push(1, 101)
        assert pq.pop() == (3, 100)
        assert pq.pop() == (1, 101)

    def test_capacity_enforced_with_drop_count(self):
        pq = PacketQueue(2)
        assert pq.push(0, 0) and pq.push(0, 1)
        assert not pq.push(0, 2)
        assert pq.dropped == 1
        assert len(pq) == 2

    def test_head_peeks_without_removal(self):
        pq = PacketQueue(4)
        pq.push(5, 7)
        assert pq.head() == (5, 7)
        assert len(pq) == 1

    def test_head_of_empty_is_none(self):
        assert PacketQueue(4).head() is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PacketQueue(0)


class TestVOQSet:
    def test_occupancy_tracks_pushes_and_pops(self):
        voqs = VOQSet(3, 4)
        voqs.push(1, 2, 100)
        voqs.push(1, 2, 101)
        assert voqs.occupancy[1, 2] == 2
        assert voqs.pop(1, 2) == 100
        assert voqs.occupancy[1, 2] == 1

    def test_request_matrix_reflects_nonempty_queues(self):
        voqs = VOQSet(3, 4)
        voqs.push(0, 2, 1)
        matrix = voqs.request_matrix()
        assert matrix[0, 2]
        assert matrix.sum() == 1

    def test_capacity_enforced(self):
        voqs = VOQSet(2, 1)
        voqs.push(0, 0, 1)
        assert not voqs.has_space(0, 0)
        with pytest.raises(OverflowError):
            voqs.push(0, 0, 2)

    def test_per_voq_fifo_order(self):
        voqs = VOQSet(2, 8)
        for t in (5, 6, 7):
            voqs.push(1, 0, t)
        assert [voqs.pop(1, 0) for _ in range(3)] == [5, 6, 7]

    def test_total_queued(self):
        voqs = VOQSet(2, 8)
        voqs.push(0, 0, 1)
        voqs.push(1, 1, 2)
        assert voqs.total_queued() == 2

    def test_queues_are_independent(self):
        voqs = VOQSet(2, 8)
        voqs.push(0, 0, 1)
        voqs.push(0, 1, 2)
        assert voqs.pop(0, 1) == 2
        assert voqs.occupancy[0, 0] == 1


class TestOutputQueue:
    def test_serves_in_order(self):
        queue = OutputQueue(4)
        queue.push(10)
        queue.push(11)
        assert queue.pop() == 10

    def test_pop_empty_returns_none(self):
        assert OutputQueue(4).pop() is None

    def test_overflow_counted(self):
        queue = OutputQueue(1)
        assert queue.push(1)
        assert not queue.push(2)
        assert queue.dropped == 1


class TestHeadTimestamps:
    def test_reports_head_generation_times(self):
        voqs = VOQSet(3, 4)
        voqs.push(0, 1, 7)
        voqs.push(0, 1, 9)  # behind the head
        voqs.push(2, 0, 3)
        heads = voqs.head_timestamps()
        assert heads[0, 1] == 7
        assert heads[2, 0] == 3

    def test_empty_queues_report_minus_one(self):
        heads = VOQSet(2, 4).head_timestamps()
        assert (heads == -1).all()

    def test_head_advances_after_pop(self):
        voqs = VOQSet(2, 4)
        voqs.push(1, 1, 5)
        voqs.push(1, 1, 6)
        voqs.pop(1, 1)
        assert voqs.head_timestamps()[1, 1] == 6
