"""Queue structures: PQ, VOQ set, output queue."""

import numpy as np
import pytest

from repro.fastpath.bitops import WORD_BITS, int_to_words, word_count
from repro.sim.queues import OutputQueue, PacketQueue, VOQSet


class TestPacketQueue:
    def test_fifo_order(self):
        pq = PacketQueue(10)
        pq.push(3, 100)
        pq.push(1, 101)
        assert pq.pop() == (3, 100)
        assert pq.pop() == (1, 101)

    def test_capacity_enforced_with_drop_count(self):
        pq = PacketQueue(2)
        assert pq.push(0, 0) and pq.push(0, 1)
        assert not pq.push(0, 2)
        assert pq.dropped == 1
        assert len(pq) == 2

    def test_head_peeks_without_removal(self):
        pq = PacketQueue(4)
        pq.push(5, 7)
        assert pq.head() == (5, 7)
        assert len(pq) == 1

    def test_head_of_empty_is_none(self):
        assert PacketQueue(4).head() is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PacketQueue(0)


class TestVOQSet:
    def test_occupancy_tracks_pushes_and_pops(self):
        voqs = VOQSet(3, 4)
        voqs.push(1, 2, 100)
        voqs.push(1, 2, 101)
        assert voqs.occupancy[1, 2] == 2
        assert voqs.pop(1, 2) == 100
        assert voqs.occupancy[1, 2] == 1

    def test_request_matrix_reflects_nonempty_queues(self):
        voqs = VOQSet(3, 4)
        voqs.push(0, 2, 1)
        matrix = voqs.request_matrix()
        assert matrix[0, 2]
        assert matrix.sum() == 1

    def test_capacity_enforced(self):
        voqs = VOQSet(2, 1)
        voqs.push(0, 0, 1)
        assert not voqs.has_space(0, 0)
        with pytest.raises(OverflowError):
            voqs.push(0, 0, 2)

    def test_per_voq_fifo_order(self):
        voqs = VOQSet(2, 8)
        for t in (5, 6, 7):
            voqs.push(1, 0, t)
        assert [voqs.pop(1, 0) for _ in range(3)] == [5, 6, 7]

    def test_total_queued(self):
        voqs = VOQSet(2, 8)
        voqs.push(0, 0, 1)
        voqs.push(1, 1, 2)
        assert voqs.total_queued() == 2

    def test_queues_are_independent(self):
        voqs = VOQSet(2, 8)
        voqs.push(0, 0, 1)
        voqs.push(0, 1, 2)
        assert voqs.pop(0, 1) == 2
        assert voqs.occupancy[0, 0] == 1


class TestVOQMasks:
    """The incremental request bitmasks (and their ``n > 64`` word-tuple
    twins) must track occupancy exactly through any push/pop sequence."""

    @staticmethod
    def assert_masks_consistent(voqs: VOQSet):
        n = voqs.n
        matrix = voqs.request_matrix()
        for i in range(n):
            expected = sum(1 << j for j in range(n) if matrix[i, j])
            assert voqs.row_masks[i] == expected
        for j in range(n):
            expected = sum(1 << i for i in range(n) if matrix[i, j])
            assert voqs.col_masks[j] == expected
        if n <= WORD_BITS:
            assert voqs.row_words is None and voqs.col_words is None
        else:
            words = word_count(n)
            for i in range(n):
                assert len(voqs.row_words[i]) == words
                assert voqs.row_words[i] == int_to_words(voqs.row_masks[i], n)
            for j in range(n):
                assert voqs.col_words[j] == int_to_words(voqs.col_masks[j], n)

    @pytest.mark.parametrize("n", [4, 63, 64, 65, 128])
    def test_masks_track_random_push_pop_sequences(self, n):
        rng = np.random.default_rng(n)
        voqs = VOQSet(n, capacity=3)
        occupied = []
        for step in range(200):
            if occupied and rng.random() < 0.45:
                i, j = occupied[rng.integers(len(occupied))]
                voqs.pop(i, j)
                if not voqs.occupancy[i, j]:
                    occupied.remove((i, j))
            else:
                i = int(rng.integers(n))
                j = int(rng.integers(n))
                if voqs.has_space(i, j):
                    voqs.push(i, j, step)
                    if (i, j) not in occupied:
                        occupied.append((i, j))
            if step % 40 == 0:
                self.assert_masks_consistent(voqs)
        self.assert_masks_consistent(voqs)

    def test_word_boundary_bits_set_and_clear(self):
        # Crosspoints straddling the 64-bit edge land in the right word.
        voqs = VOQSet(65, capacity=2)
        for j in (63, 64):
            voqs.push(2, j, 0)
            assert voqs.row_words[2][j >> 6] >> (j & 63) & 1 == 1
            assert voqs.col_words[j][0] == 1 << 2
            voqs.pop(2, j)
            assert voqs.row_words[2] == [0, 0]
            assert voqs.col_words[j] == [0, 0]

    def test_masks_ignore_depth_changes_beyond_the_first_packet(self):
        voqs = VOQSet(65, capacity=4)
        voqs.push(0, 64, 0)
        first = (list(voqs.row_words[0]), list(voqs.col_words[64]))
        voqs.push(0, 64, 1)  # depth 1 -> 2: no mask transition
        assert (list(voqs.row_words[0]), list(voqs.col_words[64])) == first
        voqs.pop(0, 64)  # 2 -> 1: still occupied
        assert (list(voqs.row_words[0]), list(voqs.col_words[64])) == first
        voqs.pop(0, 64)  # 1 -> 0: clears
        assert voqs.row_words[0] == [0, 0] and voqs.col_words[64] == [0, 0]


class TestOutputQueue:
    def test_serves_in_order(self):
        queue = OutputQueue(4)
        queue.push(10)
        queue.push(11)
        assert queue.pop() == 10

    def test_pop_empty_returns_none(self):
        assert OutputQueue(4).pop() is None

    def test_overflow_counted(self):
        queue = OutputQueue(1)
        assert queue.push(1)
        assert not queue.push(2)
        assert queue.dropped == 1


class TestHeadTimestamps:
    def test_reports_head_generation_times(self):
        voqs = VOQSet(3, 4)
        voqs.push(0, 1, 7)
        voqs.push(0, 1, 9)  # behind the head
        voqs.push(2, 0, 3)
        heads = voqs.head_timestamps()
        assert heads[0, 1] == 7
        assert heads[2, 0] == 3

    def test_empty_queues_report_minus_one(self):
        heads = VOQSet(2, 4).head_timestamps()
        assert (heads == -1).all()

    def test_head_advances_after_pop(self):
        voqs = VOQSet(2, 4)
        voqs.push(1, 1, 5)
        voqs.push(1, 1, 6)
        voqs.pop(1, 1)
        assert voqs.head_timestamps()[1, 1] == 6
