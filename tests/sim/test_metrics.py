"""Statistics primitives."""

import doctest
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.metrics
from repro.sim.metrics import (
    OnlineStats,
    ServiceMatrix,
    jain_index,
    latency_percentiles,
)


def test_docstring_examples():
    """The module's docstring examples (merge semantics etc.) must run."""
    outcome = doctest.testmod(repro.sim.metrics, extraglobs={"math": math})
    assert outcome.attempted > 0
    assert outcome.failed == 0


class TestOnlineStats:
    def test_empty_stats_are_nan(self):
        stats = OnlineStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)

    def test_matches_numpy_on_samples(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(5, 2, size=500)
        stats = OnlineStats()
        for value in samples:
            stats.add(value)
        assert stats.mean == pytest.approx(samples.mean())
        assert stats.variance == pytest.approx(samples.var(ddof=1))
        assert stats.min == samples.min() and stats.max == samples.max()

    def test_single_sample(self):
        stats = OnlineStats()
        stats.add(3.0)
        assert stats.mean == 3.0
        assert math.isnan(stats.variance)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concatenation(self, left, right):
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        for v in left:
            a.add(v)
            c.add(v)
        for v in right:
            b.add(v)
            c.add(v)
        merged = a.merge(b)
        assert merged.count == c.count
        if merged.count:
            assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
        if merged.count > 1:
            assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-6)


class TestJainIndex:
    def test_equal_allocation_is_one(self):
        assert jain_index(np.array([5, 5, 5, 5])) == pytest.approx(1.0)

    def test_single_user_hogging_is_one_over_k(self):
        assert jain_index(np.array([1, 0, 0, 0])) == pytest.approx(0.25)

    def test_empty_and_zero_are_one(self):
        assert jain_index(np.array([])) == 1.0
        assert jain_index(np.zeros(4)) == 1.0

    def test_monotone_in_imbalance(self):
        balanced = jain_index(np.array([4, 4, 4, 4]))
        skewed = jain_index(np.array([7, 4, 3, 2]))
        assert skewed < balanced


class TestServiceMatrix:
    def test_records_grants(self):
        service = ServiceMatrix(3)
        service.record(np.array([1, -1, 0]))
        service.record(np.array([1, -1, -1]))
        assert service.counts[0, 1] == 2
        assert service.counts[2, 0] == 1
        assert service.slots == 2

    def test_rates(self):
        service = ServiceMatrix(2)
        service.record(np.array([0, 1]))
        service.record(np.array([0, -1]))
        assert service.rates()[0, 0] == pytest.approx(1.0)
        assert service.rates()[1, 1] == pytest.approx(0.5)

    def test_min_pair_rate_with_mask(self):
        service = ServiceMatrix(2)
        service.record(np.array([0, -1]))
        active = np.array([[True, False], [False, False]])
        assert service.min_pair_rate(active) == pytest.approx(1.0)


class TestPercentiles:
    def test_empty_gives_nans(self):
        result = latency_percentiles(np.array([]))
        assert all(math.isnan(v) for v in result.values())

    def test_median_of_known_samples(self):
        result = latency_percentiles(np.arange(1, 102))
        assert result[50.0] == pytest.approx(51.0)
