"""VOQ crossbar switch model: conservation, latency, blocking."""

import numpy as np
import pytest

from repro.core.lcf_central import LCFCentralRR
from repro.sim.config import SimConfig
from repro.sim.crossbar import InputQueuedSwitch
from repro.traffic.base import NO_ARRIVAL


def small_config(**kw):
    defaults = dict(n_ports=4, voq_capacity=8, pq_capacity=16,
                    warmup_slots=0, measure_slots=100)
    defaults.update(kw)
    return SimConfig(**defaults)


def make_switch(**kw):
    config = small_config(**kw)
    return InputQueuedSwitch(config, LCFCentralRR(config.n_ports))


def no_arrivals(n):
    return np.full(n, NO_ARRIVAL, dtype=np.int64)


class TestBasicFlow:
    def test_single_packet_forwarded_same_slot(self):
        switch = make_switch()
        switch.measuring = True
        arrivals = no_arrivals(4)
        arrivals[0] = 2
        switch.step(0, arrivals)
        assert switch.forwarded == 1
        assert switch.latency.mean == 1.0  # arrive and depart in slot 0

    def test_scheduler_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            InputQueuedSwitch(small_config(), LCFCentralRR(5))

    def test_offered_counted_only_while_measuring(self):
        switch = make_switch()
        arrivals = no_arrivals(4)
        arrivals[0] = 1
        switch.step(0, arrivals)  # not measuring yet
        assert switch.offered == 0
        switch.measuring = True
        switch.step(1, arrivals)
        assert switch.offered == 1

    def test_packet_conservation(self):
        rng = np.random.default_rng(0)
        switch = make_switch()
        switch.measuring = True
        for slot in range(200):
            active = rng.random(4) < 0.6
            dst = rng.integers(0, 4, size=4)
            switch.step(slot, np.where(active, dst, NO_ARRIVAL))
        assert switch.offered == switch.forwarded + switch.total_queued() + switch.dropped

    def test_contention_queues_packets(self):
        switch = make_switch()
        switch.measuring = True
        arrivals = np.zeros(4, dtype=np.int64)  # all four inputs -> output 0
        switch.step(0, arrivals)
        assert switch.forwarded == 1
        assert switch.total_queued() == 3


class TestBlockingBehaviour:
    def test_pq_head_blocks_when_voq_full(self):
        switch = make_switch(voq_capacity=1)
        switch.measuring = True
        arrivals = no_arrivals(4)
        arrivals[0] = 1
        # Stuff many packets for the same destination from one input;
        # the VOQ holds 1, the rest wait in the PQ.
        for slot in range(5):
            switch.step(slot, arrivals)
        assert len(switch.pqs[0]) <= 4
        assert switch.voqs.occupancy[0, 1] <= 1

    def test_pq_overflow_drops(self):
        switch = make_switch(pq_capacity=2, voq_capacity=1)
        # Input 0 floods output 0 while 3 other inputs also hit output 0,
        # so service is slow and the PQ fills.
        for slot in range(20):
            switch.step(slot, np.zeros(4, dtype=np.int64))
        assert switch.dropped > 0

    def test_one_packet_per_link_per_slot(self):
        # Two arrivals in one step is impossible by the traffic contract,
        # but queued PQ packets must trickle into VOQs at 1/slot.
        switch = make_switch()
        arrivals = no_arrivals(4)
        arrivals[0] = 1
        for slot in range(3):
            switch.step(slot, arrivals)
        # 3 packets arrived; at most one VOQ insertion per slot happened,
        # and the scheduler drained them meanwhile.
        assert switch.voqs.occupancy[0, 1] + len(switch.pqs[0]) <= 3


class TestMeasurementOptions:
    def test_service_matrix_collection(self):
        config = small_config()
        switch = InputQueuedSwitch(config, LCFCentralRR(4), collect_service=True)
        switch.measuring = True
        arrivals = no_arrivals(4)
        arrivals[2] = 3
        switch.step(0, arrivals)
        assert switch.service.counts[2, 3] == 1

    def test_latency_samples_collection(self):
        config = small_config()
        switch = InputQueuedSwitch(config, LCFCentralRR(4), collect_latencies=True)
        switch.measuring = True
        arrivals = no_arrivals(4)
        arrivals[1] = 0
        switch.step(0, arrivals)
        assert switch.latency_samples == [1]

    def test_latency_counts_queueing_slots(self):
        switch = make_switch()
        switch.measuring = True
        # Two inputs to the same output: the loser departs one slot later.
        arrivals = no_arrivals(4)
        arrivals[0] = 0
        arrivals[1] = 0
        switch.step(0, arrivals)
        switch.step(1, no_arrivals(4))
        assert switch.forwarded == 2
        assert switch.latency.max == 2.0
