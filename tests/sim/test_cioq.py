"""CIOQ switch with fabric speedup."""

import numpy as np
import pytest

from repro.core.lcf_central import LCFCentralRR
from repro.sim.cioq import CIOQSwitch
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation
from repro.traffic.base import NO_ARRIVAL
from repro.traffic.bernoulli import BernoulliUniform


def make_switch(speedup, **kw):
    defaults = dict(n_ports=4, voq_capacity=32, pq_capacity=64,
                    outbuf_capacity=32, warmup_slots=0, measure_slots=100)
    defaults.update(kw)
    config = SimConfig(**defaults)
    return CIOQSwitch(config, LCFCentralRR(config.n_ports), speedup)


def run_loaded(speedup, load, n=8, slots=4000):
    config = SimConfig(n_ports=n, voq_capacity=64, pq_capacity=200,
                       outbuf_capacity=64, warmup_slots=500,
                       measure_slots=slots)
    switch = CIOQSwitch(config, LCFCentralRR(n), speedup)
    pattern = BernoulliUniform(n, load, seed=4)
    for slot in range(config.total_slots):
        if slot == config.warmup_slots:
            switch.measuring = True
        switch.step(slot, pattern.arrivals())
    return switch


def no_arrivals(n=4):
    return np.full(n, NO_ARRIVAL, dtype=np.int64)


class TestMechanics:
    def test_single_packet_same_slot(self):
        switch = make_switch(1)
        switch.measuring = True
        arrivals = no_arrivals()
        arrivals[0] = 2
        switch.step(0, arrivals)
        assert switch.forwarded == 1
        assert switch.latency.mean == 1.0

    def test_speedup_moves_multiple_voq_packets_per_slot(self):
        # Two inputs contending for output 0: with speedup 2 both cross
        # the fabric in slot 0 (one transmits, one waits in the output
        # queue); with speedup 1 one stays at the input.
        fast = make_switch(2)
        slow = make_switch(1)
        arrivals = no_arrivals()
        arrivals[0] = 0
        arrivals[1] = 0
        fast.step(0, arrivals)
        slow.step(0, arrivals)
        assert fast.voqs.total_queued() == 0
        assert slow.voqs.total_queued() == 1

    def test_output_link_rate_is_one_per_slot(self):
        switch = make_switch(4)
        switch.measuring = True
        arrivals = np.zeros(4, dtype=np.int64)  # 4 packets for output 0
        switch.step(0, arrivals)
        assert switch.forwarded == 1  # only the link is rate-limited

    def test_invalid_speedup_rejected(self):
        with pytest.raises(ValueError):
            make_switch(0)

    def test_conservation(self):
        rng = np.random.default_rng(5)
        switch = make_switch(2, measure_slots=300)
        switch.measuring = True
        for slot in range(300):
            active = rng.random(4) < 0.8
            dst = rng.integers(0, 4, size=4)
            switch.step(slot, np.where(active, dst, NO_ARRIVAL))
        assert switch.offered == (
            switch.forwarded + switch.total_queued() + switch.dropped
        )


class TestSpeedupClosesTheGap:
    """Speedup 2 should bring the input-queued switch within a whisker
    of the output-queued reference — the gap Figure 12 displays."""

    def test_speedup2_close_to_outbuf(self):
        load, n = 0.9, 8
        cioq = run_loaded(2, load, n=n)
        outbuf = run_simulation(
            SimConfig(n_ports=n, warmup_slots=500, measure_slots=4000),
            "outbuf",
            load,
        )
        assert cioq.latency.mean == pytest.approx(outbuf.mean_latency, rel=0.15)

    def test_latency_improves_monotonically_with_speedup(self):
        load = 0.9
        latencies = [run_loaded(s, load).latency.mean for s in (1, 2, 4)]
        assert latencies[0] > latencies[1] >= latencies[2] * 0.95
