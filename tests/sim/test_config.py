"""Simulation configuration."""

import dataclasses

import pytest

from repro.sim.config import PAPER_CONFIG, SimConfig


class TestSimConfig:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.n_ports == 16
        assert PAPER_CONFIG.voq_capacity == 256
        assert PAPER_CONFIG.pq_capacity == 1000
        assert PAPER_CONFIG.outbuf_capacity == 256
        assert PAPER_CONFIG.iterations == 4

    def test_total_slots(self):
        config = SimConfig(warmup_slots=100, measure_slots=400)
        assert config.total_slots == 500

    def test_with_replaces_fields(self):
        config = SimConfig().with_(n_ports=8, seed=9)
        assert config.n_ports == 8 and config.seed == 9
        assert config.voq_capacity == 256  # untouched

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SimConfig().n_ports = 4

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_ports", 0),
            ("voq_capacity", 0),
            ("pq_capacity", 0),
            ("outbuf_capacity", -1),
            ("iterations", 0),
            ("measure_slots", -1),
            ("warmup_slots", -1),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SimConfig(**{field: value})

    def test_warmup_only_run_allowed(self):
        # measure_slots=0 is a legal smoke configuration: nothing is
        # measured, so downstream statistics are NaN (see
        # tests/sim/test_simulator.py for the throughput guard).
        config = SimConfig(warmup_slots=10, measure_slots=0)
        assert config.total_slots == 10
