"""Columnar bench families: naming, schema, and the regression gate.

Mirrors ``tests/fastpath/test_bench_report.py`` for the
``columnar_*`` families: cells must carry the standard schema so they
merge into ``BENCH_speed.json`` and flow through
``tools/check_bench_regression.py``, whose fnmatch family selection is
what CI leans on to gate the columnar job separately from the kernel
job.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.columnar.bench import (
    DEFAULT_COLUMNAR_SCHEDULERS,
    columnar_family,
    measure_columnar_cell,
    run_columnar_suite,
    scaled_slots,
)
from repro.columnar.kernels import columnar_schedulers
from repro.fastpath.bench import REPORT_VERSION

REPO = Path(__file__).resolve().parents[2]


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_bench_regression", REPO / "tools" / "check_bench_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFamilyNaming:
    def test_family_name_shape(self):
        assert columnar_family("lcf_central_rr", 32) == "columnar_lcf_central_rr_r32"
        assert columnar_family("islip", 8) == "columnar_islip_r8"

    def test_default_schedulers_are_the_covered_set(self):
        assert DEFAULT_COLUMNAR_SCHEDULERS == columnar_schedulers()


class TestScaledSlots:
    def test_full_budget_at_or_below_anchor(self):
        assert scaled_slots(600, 16) == 600
        assert scaled_slots(600, 64) == 600

    def test_inverse_scaling_above_anchor(self):
        assert scaled_slots(600, 128) == 300
        assert scaled_slots(600, 256) == 150

    def test_floor(self):
        assert scaled_slots(600, 4096, floor=100) == 100


class TestCellSchema:
    def test_measured_cell_has_standard_schema(self):
        cell = measure_columnar_cell(
            "lcf_central_rr", 8, 4,
            warmup_slots=10, measure_slots=40, repeats=1,
        )
        assert set(cell) == {
            "reference_slots_per_sec", "fast_slots_per_sec", "speedup",
        }
        assert cell["reference_slots_per_sec"] > 0
        assert cell["fast_slots_per_sec"] > 0
        assert cell["speedup"] == pytest.approx(
            cell["fast_slots_per_sec"] / cell["reference_slots_per_sec"], rel=1e-2
        )

    def test_suite_covers_every_family_and_width(self):
        report = run_columnar_suite(
            names=("islip",), replicates=(2,), sizes=(4, 8),
            warmup_slots=10, measure_slots=30, repeats=1,
        )
        assert report["version"] == REPORT_VERSION
        assert set(report["schedulers"]) == {"columnar_islip_r2"}
        assert set(report["schedulers"]["columnar_islip_r2"]) == {"4", "8"}


class TestGateSelection:
    def test_family_selected_patterns(self):
        checker = load_checker()
        assert checker.family_selected("columnar_islip_r8", only=["columnar_*"])
        assert not checker.family_selected("islip", only=["columnar_*"])
        assert not checker.family_selected(
            "columnar_islip_r8", exclude=["columnar_*"]
        )
        assert checker.family_selected("lcf_central_rr")
        # Exact names still work as patterns.
        assert checker.family_selected("islip", only=["islip"])

    def test_default_floor_names_the_columnar_claim(self):
        checker = load_checker()
        floors = dict(checker.parse_floor(f) for f in checker.DEFAULT_FLOORS)
        assert ("columnar_lcf_central_rr_r32", 64) in floors
        assert floors[("columnar_lcf_central_rr_r32", 64)] >= 3.0

    def test_committed_baseline_meets_the_columnar_floor(self):
        baseline = json.loads((REPO / "BENCH_speed.json").read_text())
        cell = baseline["schedulers"]["columnar_lcf_central_rr_r32"]["64"]
        assert cell["speedup"] >= 3.0

    def test_committed_baseline_covers_columnar_defaults(self):
        from repro.columnar.bench import DEFAULT_COLUMNAR_SIZES, DEFAULT_REPLICATES

        baseline = json.loads((REPO / "BENCH_speed.json").read_text())
        for name in DEFAULT_COLUMNAR_SCHEDULERS:
            for r in DEFAULT_REPLICATES:
                family = baseline["schedulers"][columnar_family(name, r)]
                for n in DEFAULT_COLUMNAR_SIZES:
                    assert str(n) in family, (name, r, n)
