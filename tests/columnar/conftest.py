"""Shared helpers of the columnar equivalence suite."""

from __future__ import annotations

import math

import numpy as np


def assert_results_bit_identical(expected, actual, context=""):
    """Field-by-field equality of two SimResults, NaN-tolerant.

    Exact ``==`` on every float on purpose: the columnar engine's
    contract is *bit*-identity with the serial simulator, not closeness.
    """
    assert actual.scheduler == expected.scheduler, context
    assert actual.load == expected.load, context
    assert actual.config == expected.config, context
    for name in ("offered", "forwarded", "dropped", "shed"):
        assert getattr(actual, name) == getattr(expected, name), (context, name)
    for name in (
        "throughput",
        "mean_latency",
        "std_latency",
        "min_latency",
        "max_latency",
    ):
        want, got = getattr(expected, name), getattr(actual, name)
        assert got == want or (math.isnan(want) and math.isnan(got)), (
            context,
            name,
            want,
            got,
        )
    assert set(actual.percentiles) == set(expected.percentiles), context
    for q, want in expected.percentiles.items():
        got = actual.percentiles[q]
        assert got == want or (math.isnan(want) and math.isnan(got)), (context, q)
    assert (actual.service_counts is None) == (expected.service_counts is None), context
    if expected.service_counts is not None:
        assert np.array_equal(actual.service_counts, expected.service_counts), context
