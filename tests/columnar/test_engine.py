"""The columnar engine vs the serial simulator, whole runs, bit for bit.

Every field of every replicate's SimResult — counters, Welford moments,
percentiles, service matrix — must equal the serial
:func:`~repro.sim.run_simulation` run under the same seed, and the
per-replicate RNG streams must end at the same position. The fast tier
covers the paper width and small word-boundary widths; the full
cross-product (schedulers x loads x traffic x wide switches) runs under
``-m slow``.
"""

import numpy as np
import pytest

from repro.columnar.engine import ColumnarEngine, ColumnarMemoryError
from repro.columnar.kernels import columnar_schedulers
from repro.columnar.run import run_replicates
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation
from repro.traffic.base import make_traffic
from tests.columnar.conftest import assert_results_bit_identical

COVERED = columnar_schedulers()

SHORT = SimConfig(n_ports=8, warmup_slots=60, measure_slots=240)


def serial_results(config, name, load, seeds, **kwargs):
    return [
        run_simulation(config.with_(seed=seed), name, load, **kwargs)
        for seed in seeds
    ]


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", COVERED)
    @pytest.mark.parametrize("load", [0.3, 0.95])
    def test_full_simresult_equality(self, name, load):
        seeds = [1, 2, 3, 4]
        engine = ColumnarEngine(
            SHORT, name, load, seeds,
            collect_service=True, collect_percentiles=True,
        )
        results = engine.run()
        expected = serial_results(
            SHORT, name, load, seeds,
            collect_service=True, collect_percentiles=True,
        )
        for want, got in zip(expected, results):
            assert_results_bit_identical(want, got, (name, load))

    @pytest.mark.parametrize("traffic", ["bursty", "hotspot", "diagonal"])
    def test_registry_traffic_patterns(self, traffic):
        seeds = [5, 6, 7]
        engine = ColumnarEngine(SHORT, "lcf_central_rr", 0.8, seeds, traffic=traffic)
        results = engine.run()
        expected = serial_results(SHORT, "lcf_central_rr", 0.8, seeds, traffic=traffic)
        for want, got in zip(expected, results):
            assert_results_bit_identical(want, got, traffic)

    def test_rng_streams_end_at_serial_positions(self):
        seeds = [1, 2, 3]
        engine = ColumnarEngine(SHORT, "islip", 0.7, seeds)
        engine.run()
        for seed, engine_pattern in zip(seeds, engine.patterns):
            pattern = make_traffic("bernoulli", SHORT.n_ports, 0.7, seed=seed)
            run_simulation(SHORT.with_(seed=seed), "islip", 0.7, traffic=pattern)
            assert (
                engine_pattern.rng.bit_generator.state
                == pattern.rng.bit_generator.state
            )

    def test_queue_pressure_drops_and_blocking_match(self):
        # Tiny queues at overload: PQ drops, VOQ head blocking, and the
        # engine's circular-buffer growth all engage.
        config = SimConfig(
            n_ports=4, warmup_slots=40, measure_slots=200,
            pq_capacity=3, voq_capacity=2,
        )
        seeds = [11, 12, 13]
        results = ColumnarEngine(config, "lcf_central", 1.0, seeds).run()
        expected = serial_results(config, "lcf_central", 1.0, seeds)
        for want, got in zip(expected, results):
            assert want.dropped > 0  # the scenario actually exercises drops
            assert_results_bit_identical(want, got, "pressure")

    @pytest.mark.parametrize("n", [63, 64, 65])
    def test_word_boundary_widths(self, n):
        config = SimConfig(n_ports=n, warmup_slots=20, measure_slots=80)
        seeds = [1, 2]
        results = ColumnarEngine(config, "lcf_central_rr", 0.8, seeds).run()
        expected = serial_results(config, "lcf_central_rr", 0.8, seeds)
        for want, got in zip(expected, results):
            assert_results_bit_identical(want, got, n)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", COVERED)
    @pytest.mark.parametrize("load", [0.1, 0.6, 0.9, 1.0])
    @pytest.mark.parametrize("n", [16, 63, 64, 65, 128])
    def test_cross_product(self, name, load, n):
        config = SimConfig(n_ports=n, warmup_slots=50, measure_slots=200)
        seeds = [1, 2, 3]
        engine = ColumnarEngine(
            config, name, load, seeds,
            collect_service=True, collect_percentiles=True,
        )
        results = engine.run()
        expected = serial_results(
            config, name, load, seeds,
            collect_service=True, collect_percentiles=True,
        )
        for want, got in zip(expected, results):
            assert_results_bit_identical(want, got, (name, load, n))


class TestRequestInspection:
    def test_request_bitsets_match_serial_voq_masks(self):
        from repro.sim.crossbar import InputQueuedSwitch
        from repro.baselines.registry import make_scheduler

        config = SimConfig(n_ports=8, warmup_slots=0, measure_slots=40)
        seeds = [9]
        engine = ColumnarEngine(config, "lcf_central", 0.9, seeds)
        switch = InputQueuedSwitch(config, make_scheduler("lcf_central", 8))
        pattern = make_traffic("bernoulli", 8, 0.9, seed=9)
        for slot in range(30):
            engine._slot(slot)
            switch.step(slot, pattern.arrivals())
        packed = engine.request_bitsets()
        assert packed.shape == (1, 8, 1)
        assert [int(w) for w in packed[0, :, 0]] == switch.voqs.row_masks
        assert np.array_equal(engine.voq_occupancy()[0], switch.voqs.occupancy)


class TestMemoryCeiling:
    def test_tiny_budget_raises(self):
        config = SimConfig(n_ports=8, warmup_slots=0, measure_slots=200)
        with pytest.raises(ColumnarMemoryError):
            ColumnarEngine(
                config, "lcf_central", 1.0, [1, 2], max_bytes=1_000
            ).run()

    def test_run_replicates_falls_back_and_stays_identical(self):
        config = SimConfig(n_ports=8, warmup_slots=20, measure_slots=100)
        results = run_replicates(
            config, "lcf_central", 1.0, 2, max_bytes=1_000, columnar=True
        )
        expected = serial_results(config, "lcf_central", 1.0, [config.seed, config.seed + 1])
        for want, got in zip(expected, results):
            assert_results_bit_identical(want, got, "fallback")
