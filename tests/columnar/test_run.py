"""`run_replicates`: strategy selection, fallback, and seed handling.

The contract under test: the execution strategy is invisible. Whatever
path a block takes — columnar, switch-reuse serial, or plain serial —
every replicate equals its own ``run_simulation`` call, and blocked
configurations *fall back* rather than fail.
"""

import numpy as np
import pytest

import repro.columnar.run as run_mod
from repro.columnar.run import columnar_supported, run_replicates
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation
from repro.traffic.base import make_traffic

SHORT = SimConfig(n_ports=8, warmup_slots=40, measure_slots=160)


def serial_results(config, name, load, seeds, **kwargs):
    return [
        run_simulation(config.with_(seed=seed), name, load, **kwargs)
        for seed in seeds
    ]


class TestSupported:
    def test_covered_plain_block_is_supported(self):
        ok, reason = columnar_supported("lcf_central_rr")
        assert ok and reason == ""

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({}, "no columnar kernel"),
            ({"traffic": make_traffic("bernoulli", 4, 0.5, seed=1)}, "registry name"),
            ({"faults": {"request_loss": 0.5}}, "fault injection"),
            ({"adapter": object()}, "adaptive scheduling"),
            ({"admission": object()}, "admission control"),
            ({"tracer_factory": lambda i: None}, "tracing"),
        ],
    )
    def test_blocking_reasons(self, kwargs, fragment):
        name = "pim" if not kwargs else "lcf_central"
        ok, reason = columnar_supported(name, **kwargs)
        assert not ok
        assert fragment in reason

    def test_null_fault_plan_does_not_block(self):
        ok, _ = columnar_supported("islip", faults={})
        assert ok


class TestStrategyInvisibility:
    def test_columnar_equals_plain_serial_entry_point(self):
        seeds = [3, 4, 5]
        fast = run_replicates(SHORT, "islip", 0.85, seeds=seeds, columnar=True)
        slow = run_replicates(SHORT, "islip", 0.85, seeds=seeds, columnar=False)
        for want, got in zip(slow, fast):
            from tests.columnar.conftest import assert_results_bit_identical

            assert_results_bit_identical(want, got, "columnar vs serial entry")

    def test_uncovered_scheduler_falls_back(self, monkeypatch):
        # pim has no kernel; the engine must never be constructed.
        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("ColumnarEngine used for an uncovered scheduler")

        monkeypatch.setattr(run_mod, "ColumnarEngine", boom)
        seeds = [1, 2]
        got = run_replicates(SHORT, "pim", 0.7, seeds=seeds, columnar=True)
        want = serial_results(SHORT, "pim", 0.7, seeds)
        from tests.columnar.conftest import assert_results_bit_identical

        for w, g in zip(want, got):
            assert_results_bit_identical(w, g, "pim fallback")

    def test_instrumented_block_falls_back(self, monkeypatch):
        calls = []

        class Recorder:
            def __init__(self, *args, **kwargs):  # pragma: no cover
                calls.append(args)
                raise AssertionError("engine constructed despite tracer")

        monkeypatch.setattr(run_mod, "ColumnarEngine", Recorder)
        from repro.obs.tracer import RingTracer

        traces = {}

        def factory(index):
            traces[index] = RingTracer()
            return traces[index]

        run_replicates(
            SHORT.with_(measure_slots=40),
            "lcf_central",
            0.5,
            2,
            tracer_factory=factory,
            columnar=True,
        )
        assert not calls
        assert set(traces) == {0, 1}


class TestSwitchReuse:
    # Satellite of the columnar work: the serial path builds one switch
    # per cell and re-arms it between replicates. Statistics must be
    # unchanged versus fresh switches.
    @pytest.mark.parametrize("name", ["lcf_central_rr", "pim", "wfront"])
    def test_reuse_matches_fresh_switches(self, name):
        seeds = [7, 8, 9]
        got = run_replicates(
            SHORT,
            name,
            0.9,
            seeds=seeds,
            columnar=False,
            collect_service=True,
            collect_percentiles=True,
        )
        want = serial_results(
            SHORT, name, 0.9, seeds, collect_service=True, collect_percentiles=True
        )
        from tests.columnar.conftest import assert_results_bit_identical

        for w, g in zip(want, got):
            assert_results_bit_identical(w, g, ("reuse", name))

    def test_reuse_with_registry_traffic_kwargs(self):
        seeds = [1, 2]
        got = run_replicates(
            SHORT,
            "islip",
            0.8,
            seeds=seeds,
            traffic="hotspot",
            traffic_kwargs={"fraction": 0.6},
            columnar=False,
        )
        want = serial_results(
            SHORT,
            "islip",
            0.8,
            seeds,
            traffic="hotspot",
            traffic_kwargs={"fraction": 0.6},
        )
        from tests.columnar.conftest import assert_results_bit_identical

        for w, g in zip(want, got):
            assert_results_bit_identical(w, g, "hotspot reuse")


class TestSeeds:
    def test_default_seeds_are_config_seed_plus_r(self):
        config = SHORT.with_(seed=100, measure_slots=40)
        got = run_replicates(config, "lcf_central", 0.5, 3)
        want = serial_results(config, "lcf_central", 0.5, [100, 101, 102])
        for w, g in zip(want, got):
            assert g.config.seed == w.config.seed

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="replicates or explicit seeds"):
            run_replicates(SHORT, "lcf_central", 0.5)
        with pytest.raises(ValueError, match="at least one replicate"):
            run_replicates(SHORT, "lcf_central", 0.5, 0)
        with pytest.raises(ValueError, match="non-empty"):
            run_replicates(SHORT, "lcf_central", 0.5, seeds=[])
        with pytest.raises(ValueError, match="disagrees"):
            run_replicates(SHORT, "lcf_central", 0.5, 3, seeds=[1, 2])

    def test_explicit_seed_subset_matches_full_block_members(self):
        # The sweep reruns only the cache misses of a cell; a subset
        # block must reproduce the corresponding members of the full one.
        full = run_replicates(SHORT, "lcf_central_rr", 0.9, seeds=[10, 11, 12, 13])
        subset = run_replicates(SHORT, "lcf_central_rr", 0.9, seeds=[11, 13])
        from tests.columnar.conftest import assert_results_bit_identical

        assert_results_bit_identical(full[1], subset[0], "subset 11")
        assert_results_bit_identical(full[3], subset[1], "subset 13")
