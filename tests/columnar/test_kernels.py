"""Batched kernels vs serial schedulers: schedules and state, bit for bit.

Each columnar kernel claims that one ``schedule_batch`` call equals R
independent serial ``schedule`` calls — same grants, same tie-breaks,
same end-of-cycle round-robin/pointer state — over any request
sequence. The hypothesis cases drive random multi-slot sequences at
random widths; the word-boundary widths (63/64/65) and a wide case run
as fixed seeds, the full-width sweep under ``-m slow``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.registry import make_scheduler
from repro.columnar.bitpack import pack_requests, unpack_requests
from repro.columnar.kernels import (
    ColumnarISLIP,
    ColumnarLCFCentral,
    chain_table,
    columnar_schedulers,
    has_columnar_kernel,
    make_columnar_kernel,
)
from repro.fastpath.bitops import word_count

COVERED = columnar_schedulers()


@st.composite
def batch_runs(draw, min_n=1, max_n=8, max_r=5, max_len=8):
    """A width, a replicate count, and a request-tensor sequence."""
    n = draw(st.integers(min_n, max_n))
    r = draw(st.integers(1, max_r))
    length = draw(st.integers(1, max_len))
    tensors = [
        draw(arrays(np.bool_, (r, n, n), elements=st.booleans()))
        for _ in range(length)
    ]
    return n, r, tensors


def run_both(name, n, r, tensors):
    """Drive the kernel and R serial schedulers over the same sequence."""
    kernel = make_columnar_kernel(name, n, r)
    serials = [make_scheduler(name, n) for _ in range(r)]
    for requests in tensors:
        requests_t = np.ascontiguousarray(requests.transpose(0, 2, 1))
        before = requests_t.copy()
        batch = kernel.schedule_batch(requests_t)
        assert (requests_t == before).all(), "kernel mutated its input"
        for rep in range(r):
            expected = serials[rep].schedule(requests[rep])
            assert np.array_equal(batch[rep], expected), (name, n, rep)
    return kernel, serials


def assert_state_matches(name, kernel, serials):
    if isinstance(kernel, ColumnarLCFCentral):
        for serial in serials:
            assert kernel.rr_offsets == serial.rr_offsets
    if isinstance(kernel, ColumnarISLIP):
        grant, accept = kernel.pointers
        for rep, serial in enumerate(serials):
            ref_grant, ref_accept = serial.pointers
            assert np.array_equal(grant[rep], ref_grant)
            assert np.array_equal(accept[rep], ref_accept)


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", COVERED)
    @given(run=batch_runs())
    @settings(max_examples=30, deadline=None)
    def test_schedules_and_state_bit_identical(self, name, run):
        n, r, tensors = run
        kernel, serials = run_both(name, n, r, tensors)
        assert_state_matches(name, kernel, serials)

    @pytest.mark.parametrize("name", COVERED)
    @pytest.mark.parametrize("n", [63, 64, 65])
    def test_word_boundary_widths(self, name, n):
        rng = np.random.default_rng(7 * n)
        tensors = [rng.random((3, n, n)) < 0.4 for _ in range(4)]
        kernel, serials = run_both(name, n, 3, tensors)
        assert_state_matches(name, kernel, serials)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", COVERED)
    def test_wide_switch_long_run(self, name):
        n, r = 128, 4
        rng = np.random.default_rng(1234)
        tensors = [rng.random((r, n, n)) < d for d in (0.05, 0.3, 0.6, 0.9) for _ in range(3)]
        kernel, serials = run_both(name, n, r, tensors)
        assert_state_matches(name, kernel, serials)

    @pytest.mark.parametrize("name", COVERED)
    def test_reset_restores_power_on_state(self, name):
        n, r = 6, 3
        rng = np.random.default_rng(42)
        tensors = [rng.random((r, n, n)) < 0.5 for _ in range(5)]
        kernel, _ = run_both(name, n, r, tensors)
        kernel.reset()
        # After reset the kernel replays a fresh serial scheduler exactly.
        run_tensors = [rng.random((r, n, n)) < 0.5 for _ in range(3)]
        serials = [make_scheduler(name, n) for _ in range(r)]
        for requests in run_tensors:
            batch = kernel.schedule_batch(
                np.ascontiguousarray(requests.transpose(0, 2, 1))
            )
            for rep in range(r):
                assert np.array_equal(batch[rep], serials[rep].schedule(requests[rep]))


class TestRegistry:
    def test_covered_set(self):
        assert set(COVERED) == {"lcf_central", "lcf_central_rr", "islip"}
        for name in COVERED:
            assert has_columnar_kernel(name)
        assert not has_columnar_kernel("pim")
        assert not has_columnar_kernel("wfront")

    def test_uncovered_name_raises(self):
        with pytest.raises(KeyError, match="no columnar kernel"):
            make_columnar_kernel("pim", 4, 2)

    def test_islip_iterations_forwarded(self):
        kernel = make_columnar_kernel("islip", 4, 2, iterations=1)
        assert kernel.iterations == 1
        serials = [make_scheduler("islip", 4, iterations=1) for _ in range(2)]
        rng = np.random.default_rng(3)
        for _ in range(4):
            requests = rng.random((2, 4, 4)) < 0.7
            batch = kernel.schedule_batch(
                np.ascontiguousarray(requests.transpose(0, 2, 1))
            )
            for rep in range(2):
                assert np.array_equal(batch[rep], serials[rep].schedule(requests[rep]))

    def test_chain_table_is_shared_and_frozen(self):
        table = chain_table(5)
        assert table is chain_table(5)
        assert not table.flags.writeable
        assert table[2, 2] == 0 and table[2, 3] == 1 and table[2, 1] == 4


class TestBitpack:
    @given(
        st.integers(1, 70).flatmap(
            lambda n: arrays(np.bool_, (2, n, n), elements=st.booleans())
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_pack_unpack_roundtrip(self, requests):
        n = requests.shape[1]
        packed = pack_requests(requests)
        assert packed.shape == (2, n, word_count(n))
        assert packed.dtype == np.uint64
        assert np.array_equal(unpack_requests(packed, n), requests)

    def test_word_layout_matches_fastpath_bit_convention(self):
        # bit j of input i lives at words[j >> 6], bit (j & 63) — the
        # repro.fastpath.bitops LSB-first convention.
        n = 66
        requests = np.zeros((1, n, n), dtype=bool)
        requests[0, 2, 65] = True
        packed = pack_requests(requests)
        assert packed[0, 2, 1] == np.uint64(1) << np.uint64(1)
        assert packed[0, 2, 0] == 0
