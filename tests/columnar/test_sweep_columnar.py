"""Sweep columnar mode: block execution is invisible to the results.

``ParallelRunner(columnar=True)`` regroups consecutive replicates of a
cell into one ``run_replicates`` block. Everything downstream — merged
statistics, per-replicate shards, cache entries — must be exactly what
the per-point path produces, because the cache key deliberately ignores
the execution strategy.
"""

import pytest

from repro.sim.config import SimConfig
from repro.sweep import ParallelRunner, ResultCache, SweepSpec, point_key
from tests.columnar.conftest import assert_results_bit_identical


def quick_spec(**kw):
    defaults = dict(
        schedulers=("lcf_central_rr", "islip"),
        loads=(0.4, 0.9),
        replicates=3,
        config=SimConfig(
            n_ports=8, warmup_slots=40, measure_slots=200, seed=3
        ),
    )
    defaults.update(kw)
    return SweepSpec(**defaults)


class TestBlockEquality:
    def test_columnar_run_matches_per_point_run(self):
        spec = quick_spec()
        per_point = ParallelRunner(workers=1).run(spec)
        blocked = ParallelRunner(workers=1, columnar=True).run(spec)
        for name, load in spec.grid_keys():
            want = per_point.replicates(name, load)
            got = blocked.replicates(name, load)
            assert len(got) == len(want)
            for w, g in zip(want, got):
                assert_results_bit_identical(w, g, (name, load))
            merged_want = per_point.merged[(name, load)]
            merged_got = blocked.merged[(name, load)]
            assert merged_got.mean_latency == merged_want.mean_latency
            assert merged_got.std_latency == merged_want.std_latency
            assert merged_got.forwarded == merged_want.forwarded

    def test_uncovered_schedulers_ride_the_serial_fallback(self):
        # A grid mixing covered and uncovered schedulers still works:
        # blocks fall back internally per run_replicates.
        spec = quick_spec(schedulers=("lcf_central", "pim"), loads=(0.7,))
        per_point = ParallelRunner(workers=1).run(spec)
        blocked = ParallelRunner(workers=1, columnar=True).run(spec)
        for name, load in spec.grid_keys():
            for w, g in zip(
                per_point.replicates(name, load), blocked.replicates(name, load)
            ):
                assert_results_bit_identical(w, g, (name, load))

    def test_multiprocess_columnar_matches_serial_columnar(self):
        spec = quick_spec(loads=(0.9,))
        one = ParallelRunner(workers=1, columnar=True).run(spec)
        two = ParallelRunner(workers=2, columnar=True).run(spec)
        for name, load in spec.grid_keys():
            for w, g in zip(
                one.replicates(name, load), two.replicates(name, load)
            ):
                assert_results_bit_identical(w, g, (name, load))


class TestCacheSharing:
    def test_cache_keys_ignore_execution_strategy(self, tmp_path):
        # A columnar sweep fully warms the cache for a per-point sweep
        # (and vice versa): second run computes nothing.
        spec = quick_spec(schedulers=("lcf_central_rr",), loads=(0.9,))
        cache = ResultCache(tmp_path / "cache")
        blocked = ParallelRunner(workers=1, columnar=True, cache=cache).run(spec)
        assert all(not o.cached for o in blocked.outcomes)
        per_point = ParallelRunner(workers=1, cache=cache).run(spec)
        assert all(o.cached for o in per_point.outcomes)
        for w, g in zip(
            blocked.replicates("lcf_central_rr", 0.9),
            per_point.replicates("lcf_central_rr", 0.9),
        ):
            assert_results_bit_identical(w, g, "cache round-trip")

    def test_partial_miss_runs_only_missing_replicates(self, tmp_path):
        spec = quick_spec(schedulers=("islip",), loads=(0.9,), replicates=4)
        cache = ResultCache(tmp_path / "cache")
        # Warm replicate seeds 0 and 2 through a narrower spec run.
        points = spec.points()
        from repro.sim.simulator import run_simulation

        for p in (points[0], points[2]):
            cache.put(
                point_key(spec.config, p),
                run_simulation(spec.point_config(p), p.scheduler, p.load),
            )
        blocked = ParallelRunner(workers=1, columnar=True, cache=cache).run(spec)
        cached_flags = [o.cached for o in blocked.outcomes]
        assert cached_flags == [True, False, True, False]
        per_point = ParallelRunner(workers=1).run(spec)
        for w, g in zip(
            per_point.replicates("islip", 0.9), blocked.replicates("islip", 0.9)
        ):
            assert_results_bit_identical(w, g, "partial miss")


class TestGuards:
    def test_checkpointing_and_columnar_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="columnar"):
            ParallelRunner(
                cache=ResultCache(tmp_path / "cache"),
                checkpoint_every=100,
                columnar=True,
            )
