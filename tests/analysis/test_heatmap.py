"""ASCII heatmaps."""

import numpy as np
import pytest

from repro.analysis.heatmap import ascii_heatmap, service_heatmap


class TestHeatmap:
    def test_zero_matrix_renders_blank(self):
        text = ascii_heatmap(np.zeros((2, 2)))
        grid_rows = [line for line in text.splitlines() if line.startswith(" ")]
        assert all("@" not in row for row in grid_rows)

    def test_max_cell_gets_darkest_char(self):
        matrix = np.array([[0.0, 0.0], [0.0, 5.0]])
        text = ascii_heatmap(matrix)
        assert "@" in text

    def test_title_and_scale_line(self):
        text = ascii_heatmap(np.ones((2, 2)), title="T")
        assert text.splitlines()[0] == "T"
        assert "scale:" in text

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.array([[-1.0]]))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(4))

    def test_cell_normalisation_bounds(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.array([[2.0]]), normalise="cell")
        text = ascii_heatmap(np.array([[0.5]]), normalise="cell")
        assert text

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones((2, 2)), normalise="nope")

    def test_service_heatmap_default_title(self):
        text = service_heatmap(np.ones((3, 3), dtype=int), cycles=9)
        assert "9 cycles" in text

    def test_row_indices_present(self):
        text = ascii_heatmap(np.ones((12, 3)))
        assert " 11 " in text
