"""Statistical helpers."""

import math

import numpy as np
import pytest

from repro.analysis.stats import coefficient_of_variation, geometric_mean, mean_ci


class TestMeanCI:
    def test_empty_is_nan(self):
        mean, half = mean_ci([])
        assert math.isnan(mean) and half == 0.0

    def test_single_sample_has_zero_width(self):
        mean, half = mean_ci([4.2])
        assert mean == 4.2 and half == 0.0

    def test_interval_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(100):
            samples = rng.normal(10.0, 3.0, size=30)
            mean, half = mean_ci(samples, confidence=0.95)
            if abs(mean - 10.0) <= half:
                hits += 1
        assert hits >= 85  # ~95 expected

    def test_width_shrinks_with_samples(self):
        rng = np.random.default_rng(1)
        _, narrow = mean_ci(rng.normal(0, 1, 1000))
        _, wide = mean_ci(rng.normal(0, 1, 10))
        assert narrow < wide


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))


class TestCoV:
    def test_constant_series_is_zero(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_zero_mean_is_nan(self):
        assert math.isnan(coefficient_of_variation([-1, 1]))
