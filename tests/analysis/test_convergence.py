"""Iteration-convergence analysis."""

import pytest

from repro.analysis.convergence import convergence_curve, convergence_table


class TestConvergenceCurve:
    @pytest.fixture(scope="class")
    def lcf_curve(self):
        return convergence_curve("lcf_dist", n=16, density=0.5, samples=30, seed=1)

    def test_fractions_are_monotone(self, lcf_curve):
        # Near-monotone: each iteration count is a separate scheduler
        # whose rotation state drifts apart over the samples, so allow a
        # small sampling wobble.
        fractions = lcf_curve.fractions
        assert all(a <= b + 0.02 for a, b in zip(fractions, fractions[1:]))

    def test_fractions_bounded_by_one(self, lcf_curve):
        assert all(0.0 <= f <= 1.0 + 1e-9 for f in lcf_curve.fractions)

    def test_log_n_iterations_reach_90_percent(self, lcf_curve):
        # The Section 6.2 premise at the paper's scale.
        assert lcf_curve.fractions[3] > 0.9  # 4 = log2(16) iterations

    def test_iterations_to_target(self, lcf_curve):
        k = lcf_curve.iterations_to(0.9)
        assert k is not None and k <= 4
        assert lcf_curve.iterations_to(1.01) is None

    def test_default_iteration_budget_is_2log_n(self):
        curve = convergence_curve("pim", n=8, density=0.4, samples=10, seed=2)
        assert len(curve.fractions) == 6  # 2 * log2(8)

    def test_empty_matrices_are_trivially_converged(self):
        curve = convergence_curve("pim", n=4, density=0.0, samples=5, seed=3)
        assert all(f == 1.0 for f in curve.fractions)


class TestConvergenceTable:
    def test_table_rows_per_scheduler(self):
        rows = convergence_table(("pim", "islip"), n=8, samples=10, seed=4)
        assert [row["scheduler"] for row in rows] == ["pim", "islip"]
        assert "iter 1" in rows[0]

    def test_open_loop_regimes_sparse_vs_dense(self):
        """Two regimes, both real: at sparse density the least-choice
        priorities beat PIM's coin flips in one iteration; at high
        density the minimum-nrq inputs attract grants from many outputs
        at once (grant concentration) and PIM's spread wins the open
        loop. (Closed-loop latency still favours lcf_dist — the backlog
        matrices it actually faces are the sparse-diverse kind.)"""
        sparse = {
            row["scheduler"]: row
            for row in convergence_table(("lcf_dist", "pim"), n=16,
                                         density=0.15, samples=40, seed=5)
        }
        dense = {
            row["scheduler"]: row
            for row in convergence_table(("lcf_dist", "pim"), n=16,
                                         density=0.8, samples=40, seed=5)
        }
        assert sparse["lcf_dist"]["iter 1"] > sparse["pim"]["iter 1"]
        assert dense["lcf_dist"]["iter 1"] < dense["pim"]["iter 1"]
