"""VOQ occupancy dynamics and the paper's leveling conjecture."""

import math

import pytest

from repro.analysis.voq_dynamics import leveling_comparison, measure_voq_dynamics
from repro.sim.config import SimConfig

FAST = SimConfig(n_ports=8, voq_capacity=64, pq_capacity=200,
                 warmup_slots=500, measure_slots=3000)


class TestMeasurement:
    def test_light_load_barely_queues(self):
        dynamics = measure_voq_dynamics(FAST, "lcf_central", 0.1)
        assert dynamics.mean_choice < 2.0
        assert dynamics.mean_latency < 1.5

    def test_heavy_load_builds_backlog(self):
        light = measure_voq_dynamics(FAST, "lcf_central", 0.3)
        heavy = measure_voq_dynamics(FAST, "lcf_central", 0.95)
        assert heavy.mean_choice > light.mean_choice
        assert heavy.mean_latency > light.mean_latency

    def test_empty_run_is_nan(self):
        dynamics = measure_voq_dynamics(FAST, "lcf_central", 0.0)
        assert math.isnan(dynamics.occupancy_cv)

    def test_fields_are_populated(self):
        dynamics = measure_voq_dynamics(FAST, "islip", 0.8)
        assert dynamics.scheduler == "islip"
        assert 0.0 <= dynamics.drained_fraction <= 1.0
        assert dynamics.occupancy_cv >= 0.0


class TestLevelingHypothesis:
    """Section 6.3: 'the round robin algorithm of lcf_central_rr is
    leveling the lengths of the VOQs thereby maintaining choice by
    avoiding the VOQs to drain' — measured, not assumed."""

    @pytest.fixture(scope="class")
    def comparison(self):
        config = SimConfig(n_ports=16, voq_capacity=256, pq_capacity=1000,
                           warmup_slots=1000, measure_slots=5000)
        return leveling_comparison(config, load=0.95)

    def test_rr_levels_the_voqs(self, comparison):
        assert (
            comparison["lcf_central_rr"].occupancy_cv
            < comparison["lcf_central"].occupancy_cv
        )

    def test_rr_keeps_voqs_from_draining(self, comparison):
        assert (
            comparison["lcf_central_rr"].drained_fraction
            < comparison["lcf_central"].drained_fraction
        )

    def test_rr_maintains_more_choice(self, comparison):
        assert (
            comparison["lcf_central_rr"].mean_choice
            > comparison["lcf_central"].mean_choice
        )
