"""lcf-sweep CLI."""

import pytest

from repro.analysis.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.ports == 16
        assert args.traffic == "bernoulli"

    def test_load_parsing(self):
        args = build_parser().parse_args(["--loads", "0.5,0.9"])
        assert args.loads == (0.5, 0.9)

    def test_invalid_load_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--loads", "1.5"])


class TestMain:
    COMMON = [
        "--ports", "4", "--warmup-slots", "20", "--measure-slots", "200",
        "--loads", "0.5", "--quiet",
    ]

    def test_basic_run(self, capsys):
        code = main(["--schedulers", "lcf_central"] + self.COMMON)
        assert code == 0

    def test_csv_output(self, tmp_path, capsys):
        out = tmp_path / "points.csv"
        main(["--schedulers", "lcf_central", "--csv", str(out)] + self.COMMON)
        content = out.read_text()
        assert content.startswith("scheduler,load")
        assert "lcf_central" in content

    def test_plot_output(self, capsys):
        main(["--schedulers", "lcf_central,outbuf", "--plot"] + self.COMMON)
        assert "Figure 12a" in capsys.readouterr().out

    def test_relative_adds_outbuf(self, capsys):
        main(["--schedulers", "lcf_central", "--relative", "--plot"] + self.COMMON)
        assert "Figure 12b" in capsys.readouterr().out

    def test_shape_check_output(self, capsys):
        main(
            ["--schedulers", "lcf_central,outbuf", "--check-shape"]
            + self.COMMON
        )
        assert "shape checks passed" in capsys.readouterr().out


class TestTrafficArgs:
    def test_traffic_kwargs_forwarded(self, capsys):
        code = main([
            "--schedulers", "lcf_central", "--traffic", "hotspot",
            "--traffic-arg", "fraction=1.0", "--traffic-arg", "hotspot=2",
            "--ports", "4", "--warmup-slots", "20", "--measure-slots", "200",
            "--loads", "0.5", "--quiet",
        ])
        assert code == 0

    def test_malformed_traffic_arg_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main([
                "--schedulers", "lcf_central", "--traffic-arg", "broken",
                "--loads", "0.5", "--quiet",
            ])
