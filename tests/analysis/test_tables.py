"""Table and CSV rendering."""

from repro.analysis.tables import format_table, rows_to_csv


class TestFormatTable:
    def test_empty(self):
        assert "empty" in format_table([])

    def test_header_and_alignment(self):
        rows = [{"name": "a", "value": 1}, {"name": "bb", "value": 22}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "22" in lines[3]

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]
        assert "2" not in text.splitlines()[2]

    def test_float_formatting(self):
        text = format_table([{"x": 1.23456}], float_digits=2)
        assert "1.23" in text and "1.234" not in text

    def test_nan_rendered(self):
        text = format_table([{"x": float("nan")}])
        assert "nan" in text

    def test_missing_keys_render_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text


class TestCSV:
    def test_round_trippable_layout(self):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        csv = rows_to_csv(rows)
        lines = csv.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,a"
        assert lines[2] == "2,b"

    def test_empty_rows(self):
        assert rows_to_csv([]) == ""
