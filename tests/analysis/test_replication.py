"""Replicated runs with confidence intervals."""

import pytest

from repro.analysis.replication import compare_with_ci, replicate
from repro.sim.config import SimConfig

FAST = SimConfig(n_ports=8, warmup_slots=200, measure_slots=1500)


class TestReplicate:
    @pytest.fixture(scope="class")
    def replicated(self):
        return replicate(FAST, "lcf_central", 0.8, seeds=(1, 2, 3, 4))

    def test_aggregates_all_seeds(self, replicated):
        assert replicated.replications == 4
        assert len(replicated.results) == 4

    def test_seeds_produce_distinct_results(self, replicated):
        latencies = {r.mean_latency for r in replicated.results}
        assert len(latencies) == 4

    def test_mean_within_individual_range(self, replicated):
        latencies = [r.mean_latency for r in replicated.results]
        assert min(latencies) <= replicated.mean_latency <= max(latencies)

    def test_interval_is_positive_and_centred(self, replicated):
        low, high = replicated.latency_interval()
        assert low < replicated.mean_latency < high

    def test_row_serialisation(self, replicated):
        row = replicated.row()
        assert row["replications"] == 4
        assert "latency_ci95" in row

    def test_requires_two_seeds(self):
        with pytest.raises(ValueError):
            replicate(FAST, "lcf_central", 0.5, seeds=(1,))

    def test_throughput_ci_small_when_stable(self, replicated):
        # At load 0.8 the switch is stable: throughput ~ load with tiny
        # spread across seeds.
        assert replicated.mean_throughput == pytest.approx(0.8, abs=0.02)
        assert replicated.throughput_ci < 0.02


class TestPairedComparison:
    def test_lcf_vs_outbuf_ratio_with_ci(self):
        comparison = compare_with_ci(
            FAST, "lcf_central", "outbuf", 0.9, seeds=(1, 2, 3, 4)
        )
        assert comparison["mean_ratio"] > 1.0  # input queueing costs something
        assert comparison["mean_ratio"] < 2.0
        assert comparison["ratio_ci95"] < comparison["mean_ratio"]

    def test_self_comparison_is_exactly_one(self):
        comparison = compare_with_ci(
            FAST, "islip", "islip", 0.7, seeds=(1, 2, 3)
        )
        assert comparison["mean_ratio"] == pytest.approx(1.0)
        assert comparison["ratio_ci95"] == pytest.approx(0.0, abs=1e-12)
