"""Saturation-throughput analysis."""

import pytest

from repro.analysis.throughput import (
    FIFO_SATURATION_LIMIT,
    saturation_table,
    saturation_throughput,
)
from repro.sim.config import SimConfig

FAST = SimConfig(n_ports=8, voq_capacity=32, pq_capacity=32,
                 warmup_slots=500, measure_slots=2500)


class TestSaturation:
    def test_fifo_hits_the_karol_limit(self):
        result = saturation_throughput("fifo", FAST)
        # n=8 sits slightly above the asymptotic 0.586.
        assert result.throughput == pytest.approx(FIFO_SATURATION_LIMIT, abs=0.06)

    def test_voq_schedulers_approach_full_throughput(self):
        for name in ("lcf_central", "islip", "wfront"):
            result = saturation_throughput(name, FAST)
            assert result.throughput > 0.93, name

    def test_outbuf_is_work_conserving(self):
        result = saturation_throughput("outbuf", FAST)
        assert result.throughput > 0.95

    def test_permutation_traffic_is_lossless_for_voq(self):
        result = saturation_throughput(
            "lcf_central", FAST, traffic="permutation"
        )
        assert result.throughput > 0.99
        assert result.dropped == 0

    def test_hotspot_caps_at_the_hot_output(self):
        # fraction=1.0: all traffic to one output -> throughput 1/n.
        result = saturation_throughput(
            "lcf_central", FAST, traffic="hotspot",
            traffic_kwargs={"fraction": 1.0},
        )
        assert result.throughput == pytest.approx(1 / 8, abs=0.02)

    def test_table_shape(self):
        rows = saturation_table(("fifo", "lcf_central"), FAST)
        assert [row["scheduler"] for row in rows] == ["fifo", "lcf_central"]
        assert all("saturation_throughput" in row for row in rows)
