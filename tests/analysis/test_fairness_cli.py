"""lcf-fairness CLI."""

from repro.analysis.fairness_cli import main


class TestFairnessCLI:
    def test_rr_scheduler_exits_zero(self, capsys):
        code = main(["--scheduler", "lcf_central_rr", "--ports", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lcf_central_rr" in out
        assert "min_rate" in out

    def test_pure_lcf_on_adversarial_pattern_exits_nonzero(self, capsys):
        code = main(
            ["--scheduler", "lcf_central", "--ports", "4", "--adversarial"]
        )
        assert code == 1  # starvation detected -> failure status

    def test_rr_on_adversarial_pattern_exits_zero(self, capsys):
        code = main(
            ["--scheduler", "lcf_central_rr", "--ports", "4", "--adversarial"]
        )
        assert code == 0

    def test_heatmap_output(self, capsys):
        main(["--scheduler", "islip", "--ports", "4", "--heatmap"])
        out = capsys.readouterr().out
        assert "per-pair grants" in out
        assert "scale:" in out

    def test_all_probes_whole_set(self, capsys):
        code = main(["--all", "--ports", "4"])
        out = capsys.readouterr().out
        for name in ("lcf_central", "pim", "wfront"):
            assert name in out

    def test_fifo_rejected(self, capsys):
        assert main(["--scheduler", "fifo", "--ports", "4"]) == 2

    def test_custom_cycles(self, capsys):
        main(["--scheduler", "islip", "--ports", "4", "--cycles", "32"])
        assert "32" in capsys.readouterr().out
