"""ASCII plotting."""

import math

from repro.analysis.asciiplot import ascii_plot


class TestAsciiPlot:
    def test_empty_series(self):
        assert ascii_plot({}) == "(no data)"

    def test_markers_and_legend(self):
        text = ascii_plot({"a": ([0, 1], [0, 1]), "b": ([0, 1], [1, 0])})
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text

    def test_title_and_labels(self):
        text = ascii_plot(
            {"s": ([0, 1], [1, 2])}, title="T", x_label="load", y_label="lat"
        )
        assert text.splitlines()[0] == "T"
        assert "load" in text and "lat" in text

    def test_y_max_clips_to_top_row(self):
        text = ascii_plot({"s": ([0.0, 1.0], [0.0, 100.0])}, y_max=10.0, height=5)
        lines = text.splitlines()
        # No title: lines[0] is the y-label, lines[1] the top grid row,
        # where the clipped point must land.
        assert "o" in lines[1]

    def test_nan_points_do_not_crash(self):
        text = ascii_plot({"s": ([0, 1, 2], [1.0, math.nan, 2.0])})
        assert "o" in text

    def test_single_point(self):
        text = ascii_plot({"s": ([0.5], [3.0])})
        assert "o" in text
