"""Load-sweep harness (tiny grids for speed)."""

import math

import pytest

from repro.analysis.sweep import SweepSpec, check_paper_shape, run_sweep, shape_report
from repro.sim.config import SimConfig


def tiny_spec(schedulers=("lcf_central", "outbuf"), loads=(0.3, 0.8)):
    return SweepSpec(
        schedulers=schedulers,
        loads=loads,
        config=SimConfig(n_ports=4, warmup_slots=50, measure_slots=500,
                         voq_capacity=32, pq_capacity=64, seed=3),
    )


class TestRunSweep:
    def test_grid_is_complete(self):
        sweep = run_sweep(tiny_spec())
        assert len(sweep.results) == 4
        assert sweep.get("outbuf", 0.3).scheduler == "outbuf"

    def test_series_ordering(self):
        sweep = run_sweep(tiny_spec())
        loads, latencies = sweep.series("lcf_central")
        assert loads == [0.3, 0.8]
        assert latencies[0] < latencies[1]  # latency grows with load

    def test_relative_series_reference_is_one(self):
        sweep = run_sweep(tiny_spec())
        _, ratios = sweep.relative_series("outbuf")
        assert all(r == pytest.approx(1.0) for r in ratios)

    def test_relative_series_crossbar_at_least_one(self):
        sweep = run_sweep(tiny_spec())
        _, ratios = sweep.relative_series("lcf_central")
        assert all(r >= 0.95 for r in ratios)

    def test_csv_has_row_per_point(self):
        sweep = run_sweep(tiny_spec())
        lines = sweep.to_csv().strip().splitlines()
        assert len(lines) == 1 + 4

    def test_plot_renders(self):
        sweep = run_sweep(tiny_spec())
        assert "Figure 12a" in sweep.plot()
        assert "Figure 12b" in sweep.plot(relative=True)

    def test_deterministic(self):
        a = run_sweep(tiny_spec())
        b = run_sweep(tiny_spec())
        assert a.get("lcf_central", 0.8).mean_latency == b.get(
            "lcf_central", 0.8
        ).mean_latency


class TestShapeChecks:
    def test_claims_skipped_for_missing_schedulers(self):
        sweep = run_sweep(tiny_spec())
        checks = check_paper_shape(sweep)
        # Only the claims whose schedulers are present are evaluated.
        for check in checks:
            assert "pim" not in check.claim or False

    def test_report_format(self):
        sweep = run_sweep(tiny_spec())
        report = shape_report(check_paper_shape(sweep))
        assert "shape checks passed" in report


class TestParallelSweep:
    def test_multiprocessing_pool_matches_serial(self):
        spec = tiny_spec(loads=(0.5,))
        serial = run_sweep(spec, processes=1)
        parallel = run_sweep(spec, processes=2)
        for key, result in serial.results.items():
            assert parallel.results[key].mean_latency == result.mean_latency
            assert parallel.results[key].forwarded == result.forwarded
