"""Fairness bounds and starvation (the Section 3/7 claims)."""

import numpy as np
from hypothesis import given, settings
import pytest

from repro.analysis.fairness import (
    adversarial_two_flow_matrix,
    bandwidth_shares,
    saturated_service_counts,
    starvation_report,
)
from repro.baselines.islip import ISLIP
from tests.conftest import request_matrices
from repro.core.lcf_central import LCFCentral, LCFCentralRR
from repro.core.lcf_dist import LCFDistributedRR


class TestRRGuarantee:
    """The paper's hard guarantee: every backlogged pair is served at
    least once per n^2 cycles, i.e. gets >= b/n^2 bandwidth."""

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_lcf_central_rr_meets_bound(self, n):
        report = starvation_report(LCFCentralRR(n))
        assert report.starvation_free
        assert report.min_rate >= 1.0 / (n * n)

    def test_lcf_dist_rr_meets_bound(self):
        n = 4
        report = starvation_report(LCFDistributedRR(n))
        assert report.starvation_free
        assert report.min_rate >= 1.0 / (n * n)

    def test_bound_holds_for_partial_backlog(self):
        n = 4
        requests = np.zeros((n, n), dtype=bool)
        requests[0] = True  # only input 0 is backlogged, for everything
        report = starvation_report(LCFCentralRR(n), requests=requests)
        assert report.starvation_free

    def test_guarantee_is_periodic(self):
        # Two full periods: every pair served at least twice.
        n = 3
        counts = saturated_service_counts(LCFCentralRR(n), 2 * n * n)
        assert counts.min() >= 2


class TestStarvation:
    def test_pure_lcf_can_starve_under_saturation(self):
        """Without the RR overlay there is no bound: under a crafted
        static pattern some pair must go unserved for n^2 cycles."""
        n = 4
        requests = adversarial_two_flow_matrix(n)
        report = starvation_report(LCFCentral(n), cycles=n * n, requests=requests)
        # (0, ...) pairs lose to the one-choice flows deterministically:
        # pure LCF always grants I1 before I0 on outputs 0/1.
        assert not report.starvation_free

    def test_rr_overlay_fixes_the_same_pattern(self):
        n = 4
        requests = adversarial_two_flow_matrix(n)
        report = starvation_report(LCFCentralRR(n), cycles=n * n, requests=requests)
        assert report.starvation_free

    def test_islip_is_starvation_free_under_saturation(self):
        report = starvation_report(ISLIP(4))
        assert report.starvation_free

    def test_report_fields(self):
        report = starvation_report(LCFCentralRR(3))
        assert report.cycles == 9
        assert report.counts.shape == (3, 3)
        assert 0 < report.jain <= 1.0


class TestBandwidthShares:
    def test_shares_sum_to_utilisation(self):
        n = 4
        counts = saturated_service_counts(LCFCentralRR(n), 100)
        shares = bandwidth_shares(counts, 100)
        # Full backlog: every output fully utilised, so shares sum to n.
        assert shares.sum() == pytest.approx(n)

    def test_adversarial_matrix_requires_three_ports(self):
        with pytest.raises(ValueError):
            adversarial_two_flow_matrix(2)


class TestHardBoundOnArbitraryBacklogs:
    """The Section 3 guarantee is per-pair and workload-independent:
    *any* pair that stays backlogged is served within n^2 cycles, no
    matter what the rest of the matrix does."""

    @given(request_matrices(min_n=2, max_n=5))
    @settings(max_examples=25, deadline=None)
    def test_rr_serves_every_static_backlog(self, requests):
        n = requests.shape[0]
        report = starvation_report(LCFCentralRR(n), requests=requests)
        assert report.starvation_free, report.starved_pairs

    @given(request_matrices(min_n=2, max_n=4))
    @settings(max_examples=15, deadline=None)
    def test_distributed_rr_serves_every_static_backlog(self, requests):
        n = requests.shape[0]
        report = starvation_report(LCFDistributedRR(n), requests=requests)
        assert report.starvation_free, report.starved_pairs
