"""Closed-form theory, and the simulator validated against it."""

import math

import pytest

from repro.analysis.theory import (
    FIFO_SATURATION_LIMIT,
    fifo_saturation_throughput,
    fifo_saturates_below,
    md1_wait,
    output_queue_latency,
    output_queue_wait,
)
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation


class TestClosedForms:
    def test_wait_is_zero_at_zero_load(self):
        assert output_queue_wait(0.0, 16) == 0.0

    def test_wait_diverges_towards_full_load(self):
        assert output_queue_wait(0.99, 16) > 40

    def test_single_port_never_waits(self):
        # n=1: one deterministic arrival stream into one server.
        assert output_queue_wait(0.9, 1) == 0.0

    def test_limit_is_md1(self):
        assert output_queue_wait(0.8, 10**6) == pytest.approx(md1_wait(0.8), rel=1e-4)

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            output_queue_wait(1.0, 16)
        with pytest.raises(ValueError):
            md1_wait(-0.1)

    def test_fifo_saturation_values(self):
        assert fifo_saturation_throughput(2) == 0.75
        assert fifo_saturation_throughput(100) == FIFO_SATURATION_LIMIT
        assert math.isclose(FIFO_SATURATION_LIMIT, 0.5857, abs_tol=5e-4)

    def test_fifo_saturation_is_decreasing_in_n(self):
        values = [fifo_saturation_throughput(n) for n in range(1, 9)]
        assert values == sorted(values, reverse=True)

    def test_saturates_below(self):
        assert fifo_saturates_below(0.5, 16)
        assert not fifo_saturates_below(0.7, 16)


class TestSimulatorMatchesTheory:
    """The Monte-Carlo switch must track the exact formulas."""

    CONFIG = SimConfig(n_ports=16, warmup_slots=2000, measure_slots=20000)

    @pytest.mark.parametrize("load", [0.3, 0.6, 0.8])
    def test_outbuf_latency_matches_karol_formula(self, load):
        result = run_simulation(self.CONFIG, "outbuf", load)
        expected = output_queue_latency(load, 16)
        assert result.mean_latency == pytest.approx(expected, rel=0.06)

    def test_fifo_saturation_matches_karol_limit(self):
        config = SimConfig(n_ports=16, voq_capacity=64, pq_capacity=64,
                           warmup_slots=1000, measure_slots=5000)
        result = run_simulation(config, "fifo", 1.0)
        # n=16 sits a little above the asymptotic limit.
        assert FIFO_SATURATION_LIMIT - 0.02 < result.throughput < FIFO_SATURATION_LIMIT + 0.06

    def test_voq_scheduler_beats_fifo_saturation_bound(self):
        config = SimConfig(n_ports=8, voq_capacity=64, pq_capacity=64,
                           warmup_slots=500, measure_slots=3000)
        result = run_simulation(config, "lcf_central", 1.0)
        assert result.throughput > fifo_saturation_throughput(8) + 0.2
