"""lcf-report generator (smoke fidelity)."""

import pytest

from repro.analysis.report import FIDELITIES, generate_report, main


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(fidelity="smoke", n_ports=8, seed=2)

    def test_contains_every_section(self, report):
        for heading in (
            "Figure 12a",
            "shape checks",
            "Table 1",
            "Table 2",
            "communication cost",
            "Fairness under saturation",
            "VOQ-leveling",
            "Saturation throughput",
        ):
            assert heading in report, heading

    def test_paper_constants_present(self, report):
        for value in ("7967", "1592", "83", "1258", "336"):
            assert value in report

    def test_shape_checks_ran(self, report):
        assert "shape checks passed" in report

    def test_fairness_bound_met(self, report):
        assert "starved" in report

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError):
            generate_report(fidelity="nope")

    def test_fidelity_presets_sane(self):
        for loads, warmup, measure in FIDELITIES.values():
            assert all(0 < load <= 1 for load in loads)
            assert warmup >= 0 and measure > 0


class TestMain:
    def test_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["--fidelity", "smoke", "--ports", "8", "--output", str(out)])
        assert code == 0
        assert out.read_text().startswith("# LCF reproduction report")
