"""Register-level hardware model: equivalence and cycle counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcf_central import LCFCentralRR
from repro.core.precalc import PrecalcScheduler
from repro.hw.rtl import LCFSchedulerRTL
from repro.hw.timing import cycles_check_precalc, cycles_lcf

from tests.conftest import request_matrices


class TestEquivalence:
    @given(request_matrices(min_n=2, max_n=6), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_single_cycle_matches_behavioural(self, requests, offset):
        n = requests.shape[0]
        rtl = LCFSchedulerRTL(n)
        behavioural = LCFCentralRR(n)
        rtl.set_rr_offsets(offset % n, (offset * 3) % n)
        behavioural.set_rr_offsets(offset % n, (offset * 3) % n)
        assert (rtl.schedule(requests) == behavioural.schedule(requests)).all()

    def test_long_run_stays_synchronised(self):
        rng = np.random.default_rng(0)
        n = 5
        rtl, behavioural = LCFSchedulerRTL(n), LCFCentralRR(n)
        for _ in range(n * n + 7):  # more than a full diagonal period
            requests = rng.random((n, n)) < 0.45
            assert (rtl.schedule(requests) == behavioural.schedule(requests)).all()
            assert rtl.rr_offsets == behavioural.rr_offsets

    def test_precalc_matches_behavioural_wrapper(self):
        rng = np.random.default_rng(1)
        n = 4
        rtl = LCFSchedulerRTL(n)
        behavioural = PrecalcScheduler(n)
        for _ in range(30):
            requests = rng.random((n, n)) < 0.5
            precalc = rng.random((n, n)) < 0.15
            hw = rtl.schedule_with_precalc(requests, precalc)
            sw = behavioural.schedule(requests, precalc)
            assert (hw == sw.output_schedule).all()


class TestCycleCounts:
    def test_lcf_only_cycles_match_table2(self):
        for n in (4, 8, 16):
            rtl = LCFSchedulerRTL(n)
            rtl.schedule(np.ones((n, n), dtype=bool))
            assert rtl.last_cycles == cycles_lcf(n)

    def test_precalc_adds_2n_plus_1(self):
        n = 16
        rtl = LCFSchedulerRTL(n)
        rtl.schedule_with_precalc(
            np.ones((n, n), dtype=bool), np.zeros((n, n), dtype=bool)
        )
        assert rtl.last_cycles == cycles_lcf(n) + cycles_check_precalc(n)

    def test_total_cycles_accumulate(self):
        rtl = LCFSchedulerRTL(4)
        for _ in range(3):
            rtl.schedule(np.zeros((4, 4), dtype=bool))
        assert rtl.total_cycles == 3 * cycles_lcf(4)

    def test_clint_scheduling_time_budget(self):
        """Section 1: 'The switch is re-scheduled every 8.5 us and the
        actual scheduling time is 1.3 us' — our cycle model at 66 MHz
        must stay within that budget."""
        rtl = LCFSchedulerRTL(16)
        rtl.schedule_with_precalc(
            np.ones((16, 16), dtype=bool), np.zeros((16, 16), dtype=bool)
        )
        time_us = rtl.last_cycles / rtl.CLOCK_MHZ
        assert time_us == pytest.approx(1.258, abs=0.01)
        assert time_us < 1.3


class TestInternals:
    def test_priority_chain_stays_a_permutation(self):
        rtl = LCFSchedulerRTL(4)
        rtl.schedule(np.zeros((4, 4), dtype=bool))
        positions = sorted(s.chain_position for s in rtl.slices)
        assert positions == [0, 1, 2, 3]

    def test_chain_head_is_rr_requester(self):
        # After k scheduling cycles the behavioural offset I equals k, and
        # at the *start* of the next cycle the chain head (position 0)
        # must be requester I.
        rtl = LCFSchedulerRTL(4)
        for _ in range(2):
            rtl.schedule(np.zeros((4, 4), dtype=bool))
        i, _ = rtl.rr_offsets
        # Trigger a load and inspect the programmed chain.
        for index, slice_ in enumerate(rtl.slices):
            slice_.load(np.zeros(4, dtype=bool), (index - i) % 4)
        heads = [s.index for s in rtl.slices if s.chain_position == 0]
        assert heads == [i]

    def test_rejects_wrong_matrix_size(self):
        with pytest.raises(ValueError):
            LCFSchedulerRTL(4).schedule(np.ones((3, 3), dtype=bool))

    def test_reset_clears_state(self):
        rtl = LCFSchedulerRTL(4)
        rtl.schedule(np.ones((4, 4), dtype=bool))
        rtl.reset()
        assert rtl.rr_offsets == (0, 0)
        assert rtl.total_cycles == 0


class TestPrecalcMulticast:
    def test_multicast_precalc_drives_multiple_outputs(self):
        n = 4
        rtl = LCFSchedulerRTL(n)
        requests = np.zeros((n, n), dtype=bool)
        requests[0, 0] = True
        precalc = np.zeros((n, n), dtype=bool)
        precalc[3, 1] = precalc[3, 3] = True  # the Figure 7 multicast
        output = rtl.schedule_with_precalc(requests, precalc)
        assert output[1] == 3 and output[3] == 3  # multicast
        assert output[0] == 0  # LCF stage still ran

    def test_conflicting_precalc_resolved_like_behavioural(self):
        n = 4
        rtl = LCFSchedulerRTL(n)
        behavioural = PrecalcScheduler(n)
        requests = np.zeros((n, n), dtype=bool)
        precalc = np.zeros((n, n), dtype=bool)
        precalc[1, 2] = precalc[2, 2] = True  # both claim output 2
        hw = rtl.schedule_with_precalc(requests, precalc)
        sw = behavioural.schedule(requests, precalc)
        assert (hw == sw.output_schedule).all()
        assert hw[2] == 1  # lowest initiator wins

    def test_busy_multicast_input_excluded_from_lcf_stage(self):
        n = 4
        rtl = LCFSchedulerRTL(n)
        requests = np.ones((n, n), dtype=bool)
        precalc = np.zeros((n, n), dtype=bool)
        precalc[0, 1] = True
        output = rtl.schedule_with_precalc(requests, precalc)
        # Input 0 transmits its precalculated packet only.
        assert (output == 0).sum() == 1
        assert output[1] == 0
