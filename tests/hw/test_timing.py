"""Table 2 timing model and the Section 6.2 speed comparison."""

import pytest

from repro.hw.timing import (
    central_time_steps,
    cycles_check_precalc,
    cycles_lcf,
    cycles_to_ns,
    cycles_total,
    distributed_time_steps,
    speedup_distributed_over_central,
    table2,
)


class TestTable2Exact:
    def test_decompositions_at_n16(self):
        assert cycles_check_precalc(16) == 33
        assert cycles_lcf(16) == 50
        assert cycles_total(16) == 83

    def test_times_at_66mhz(self):
        assert cycles_to_ns(33) == 500
        assert cycles_to_ns(50) == 758
        assert cycles_to_ns(83) == 1258

    def test_table2_rows(self):
        rows = table2()
        assert [(r.task, r.cycles, r.time_ns) for r in rows] == [
            ("Check prec. schedule", 33, 500),
            ("Calculate LCF schedule", 50, 758),
            ("Total", 83, 1258),
        ]

    def test_decomposition_identity(self):
        for n in (1, 4, 16, 64):
            assert cycles_check_precalc(n) + cycles_lcf(n) == cycles_total(n)


class TestSpeedComparison:
    def test_central_is_linear(self):
        assert central_time_steps(16) == 16
        assert central_time_steps(1024) == 1024

    def test_distributed_is_logarithmic(self):
        assert distributed_time_steps(16) == 4
        assert distributed_time_steps(1024) == 10

    def test_explicit_iterations_override(self):
        assert distributed_time_steps(16, iterations=4) == 4
        assert distributed_time_steps(16, iterations=2) == 2

    def test_speedup_grows_with_n(self):
        assert speedup_distributed_over_central(16) == pytest.approx(4.0)
        assert speedup_distributed_over_central(1024) > speedup_distributed_over_central(64)
