"""lcf-hw CLI."""

from repro.hw.cli import main


class TestHwCLI:
    def test_default_report_contains_paper_numbers(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for value in ("7200", "767", "7967", "1376", "216", "1592",
                      "33", "50", "83", "500", "758", "1258", "336", "11264"):
            assert value in out, value

    def test_scaled_report(self, capsys):
        assert main(["--ports", "64"]) == 0
        out = capsys.readouterr().out
        assert "64" in out
        assert "15%" not in out  # utilisation only quoted for n=16

    def test_custom_clock(self, capsys):
        main(["--clock-mhz", "132"])
        out = capsys.readouterr().out
        # Twice the clock, half the time: 83 cycles -> 629 ns.
        assert "629" in out

    def test_rtl_verification_passes(self, capsys):
        assert main(["--ports", "5", "--verify-rtl", "--rtl-cycles", "30"]) == 0
        out = capsys.readouterr().out
        assert "0 mismatches" in out
