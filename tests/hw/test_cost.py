"""Table 1 cost model — the paper's numbers must reproduce exactly."""

import pytest

from repro.hw.cost import (
    XCV600_FLIP_FLOPS,
    central_gate_count,
    central_register_count,
    cost_report,
    fpga_utilisation,
    slice_gate_breakdown,
    slice_gate_count,
    slice_register_breakdown,
    slice_register_count,
    table1,
)


class TestTable1Exact:
    """Table 1: distributed 16x450=7200 gates / 16x86=1376 registers,
    central 767 gates / 216 registers, totals 7967 / 1592."""

    def test_slice_gate_count(self):
        assert slice_gate_count(16) == 450

    def test_slice_register_count(self):
        assert slice_register_count(16) == 86

    def test_distributed_totals(self):
        report = cost_report(16)
        assert report.distributed_gates == 7200
        assert report.distributed_registers == 1376

    def test_central_counts(self):
        report = cost_report(16)
        assert report.central_gates == 767
        assert report.central_registers == 216

    def test_grand_totals(self):
        report = cost_report(16)
        assert report.total_gates == 7967
        assert report.total_registers == 1592

    def test_table1_rows_match_paper_layout(self):
        rows = table1()
        assert rows[0] == {
            "count": "gates",
            "distributed": 7200,
            "central": 767,
            "total": 7967,
        }
        assert rows[1] == {
            "count": "registers",
            "distributed": 1376,
            "central": 216,
            "total": 1592,
        }


class TestScaling:
    def test_breakdowns_sum_to_totals(self):
        for n in (4, 16, 64):
            assert sum(slice_gate_breakdown(n).values()) == slice_gate_count(n)
            assert sum(slice_register_breakdown(n).values()) == slice_register_count(n)

    def test_slice_cost_grows_linearly(self):
        # Datapath registers are n-bit wide: doubling n roughly doubles
        # the slice register count.
        small, large = slice_register_count(16), slice_register_count(32)
        assert 1.7 < large / small < 2.1

    def test_total_cost_grows_quadratically(self):
        # n slices of O(n) size each.
        small, large = cost_report(16), cost_report(32)
        assert 3.0 < large.distributed_gates / small.distributed_gates < 4.5

    def test_central_cost_grows_linearly(self):
        small, large = central_gate_count(16), central_gate_count(32)
        assert 1.5 < large / small < 2.2
        assert central_register_count(32) < 2.2 * central_register_count(16)


class TestUtilisation:
    def test_matches_paper_fifteen_percent(self):
        assert fpga_utilisation(16) == pytest.approx(0.15, abs=0.03)

    def test_registers_fit_the_device(self):
        assert cost_report(16).total_registers < XCV600_FLIP_FLOPS
