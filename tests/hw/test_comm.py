"""Section 6.2 communication-cost model."""

import pytest

from repro.hw.comm import (
    central_bits,
    central_messages,
    comm_ratio,
    comm_table,
    distributed_bits,
    distributed_messages,
)


class TestFormulas:
    def test_central_formula_n16(self):
        # n(n + log2 n + 1) = 16 * (16 + 4 + 1) = 336.
        assert central_bits(16) == 336

    def test_distributed_formula_n16_i4(self):
        # i n^2 (2 log2 n + 3) = 4 * 256 * 11 = 11264.
        assert distributed_bits(16, 4) == 11264

    def test_message_breakdowns_match_figure10(self):
        central = central_messages(16)
        assert central["request"].bits == 16
        assert central["grant"].fields == {"gnt": 4, "vld": 1}
        dist = distributed_messages(16)
        assert dist["request"].fields == {"req": 1, "nrq": 4}
        assert dist["grant"].fields == {"gnt": 1, "ngt": 4}
        assert dist["accept"].bits == 1

    def test_totals_consistent_with_breakdowns(self):
        n, i = 16, 4
        central = central_messages(n)
        per_port = central["request"].bits + central["grant"].bits
        assert central_bits(n) == n * per_port
        dist = distributed_messages(n)
        per_pair = sum(m.bits for m in dist.values())
        assert distributed_bits(n, i) == i * n * n * per_pair

    def test_iterations_must_be_positive(self):
        with pytest.raises(ValueError):
            distributed_bits(16, 0)


class TestComparison:
    def test_distributed_always_costs_more(self):
        for n in (4, 16, 64, 256):
            assert comm_ratio(n, 1) > 1.0

    def test_ratio_grows_with_iterations(self):
        assert comm_ratio(16, 8) == pytest.approx(2 * comm_ratio(16, 4))

    def test_comm_table_covers_requested_range(self):
        rows = comm_table(port_counts=(4, 16), iterations=4)
        assert [row["n"] for row in rows] == [4, 16]
        assert rows[1]["distributed_bits"] == 11264

    def test_distributed_scales_quadratically_with_log_factor(self):
        # Doubling n roughly quadruples the distributed bits.
        ratio = distributed_bits(32, 4) / distributed_bits(16, 4)
        assert 3.5 < ratio < 5.0
