"""Unary encodings and the open-collector bus."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.encoding import (
    OpenCollectorBus,
    unary_decode,
    unary_decrement,
    unary_encode,
)


class TestUnary:
    def test_three_requests_pattern(self):
        # The paper's example: three requests -> 0...0111.
        assert unary_encode(3, 8).tolist() == [True] * 3 + [False] * 5

    def test_zero_and_full(self):
        assert not unary_encode(0, 4).any()
        assert unary_encode(4, 4).all()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            unary_encode(5, 4)
        with pytest.raises(ValueError):
            unary_encode(-1, 4)

    @given(st.integers(0, 16))
    def test_roundtrip(self, value):
        assert unary_decode(unary_encode(value, 16)) == value

    def test_decode_rejects_corrupted_pattern(self):
        with pytest.raises(ValueError):
            unary_decode(np.array([True, False, True]))

    @given(st.integers(1, 12))
    def test_decrement_is_shift(self, value):
        bits = unary_encode(value, 12)
        assert unary_decode(unary_decrement(bits)) == value - 1

    def test_decrement_of_zero_stays_zero(self):
        assert not unary_decrement(unary_encode(0, 4)).any()


class TestOpenCollectorBus:
    def test_idle_bus_is_all_high(self):
        bus = OpenCollectorBus(4)
        assert bus.sample().all()
        assert not bus.driven

    def test_wired_and_resolves_minimum(self):
        # The paper's example: 0...0111 and 0...0001 -> 0...0001.
        bus = OpenCollectorBus(8)
        bus.drive(unary_encode(3, 8))
        bus.drive(unary_encode(1, 8))
        assert unary_decode(bus.sample()) == 1

    def test_release_restores_pullups(self):
        bus = OpenCollectorBus(4)
        bus.drive(unary_encode(1, 4))
        bus.release()
        assert bus.sample().all()

    def test_width_mismatch_rejected(self):
        bus = OpenCollectorBus(4)
        with pytest.raises(ValueError):
            bus.drive(unary_encode(1, 5))

    @given(st.lists(st.integers(1, 8), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_minimum_always_wins(self, values):
        bus = OpenCollectorBus(8)
        for value in values:
            bus.drive(unary_encode(value, 8))
        assert unary_decode(bus.sample()) == min(values)
