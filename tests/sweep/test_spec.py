"""Sweep grid enumeration and seed derivation."""

import pytest

from repro.sim.config import SimConfig
from repro.sweep import PAPER_LOADS, SweepSpec


def small_spec(**kw):
    defaults = dict(
        schedulers=("lcf_central", "islip"),
        loads=(0.3, 0.8),
        config=SimConfig(n_ports=4, warmup_slots=20, measure_slots=200,
                         voq_capacity=16, pq_capacity=32, seed=5),
    )
    defaults.update(kw)
    return SweepSpec(**defaults)


class TestEnumeration:
    def test_point_count(self):
        assert small_spec().n_points() == 4
        assert small_spec(replicates=3).n_points() == 12
        assert len(small_spec(replicates=3).points()) == 12

    def test_scheduler_major_order(self):
        points = small_spec(replicates=2).points()
        labels = [(p.scheduler, p.load, p.replicate) for p in points[:4]]
        assert labels == [
            ("lcf_central", 0.3, 0), ("lcf_central", 0.3, 1),
            ("lcf_central", 0.8, 0), ("lcf_central", 0.8, 1),
        ]

    def test_grid_keys_cover_cells_once(self):
        spec = small_spec(replicates=4)
        assert spec.grid_keys() == [
            ("lcf_central", 0.3), ("lcf_central", 0.8),
            ("islip", 0.3), ("islip", 0.8),
        ]

    def test_paper_defaults(self):
        spec = SweepSpec()
        assert spec.loads == PAPER_LOADS
        assert len(PAPER_LOADS) == 20


class TestSeeds:
    def test_replicate_zero_uses_base_seed(self):
        spec = small_spec()
        assert spec.seed_for(0) == spec.config.seed
        assert all(p.seed == spec.config.seed for p in spec.points())

    def test_shard_seeds_are_distinct_and_derived(self):
        spec = small_spec(replicates=4)
        reps = [p for p in spec.points() if p.grid_key == ("islip", 0.8)]
        assert [p.seed for p in reps] == [5, 6, 7, 8]

    def test_point_config_only_changes_seed(self):
        spec = small_spec(replicates=2)
        point = spec.points()[1]
        config = spec.point_config(point)
        assert config.seed == spec.config.seed + 1
        assert config.with_(seed=spec.config.seed) == spec.config

    def test_replicate_zero_config_equals_base(self):
        spec = small_spec()
        assert spec.point_config(spec.points()[0]) == spec.config


class TestValidation:
    def test_zero_replicates_rejected(self):
        with pytest.raises(ValueError):
            small_spec(replicates=0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            small_spec(schedulers=())
        with pytest.raises(ValueError):
            small_spec(loads=())
