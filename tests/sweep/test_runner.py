"""Parallel runner: shard-merge correctness, caching, and resume."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sweep.runner as runner_mod
from repro.sim.config import SimConfig
from repro.sim.metrics import OnlineStats
from repro.sim.simulator import SimResult, run_simulation
from repro.sweep import ParallelRunner, ResultCache, SweepSpec, merge_results
from repro.sweep.merge import stats_from_result


def quick_spec(**kw):
    defaults = dict(
        schedulers=("lcf_central", "outbuf"),
        loads=(0.3, 0.8),
        config=SimConfig(n_ports=4, warmup_slots=50, measure_slots=500,
                         voq_capacity=32, pq_capacity=64, seed=3),
    )
    defaults.update(kw)
    return SweepSpec(**defaults)


def result_from_samples(samples, config):
    """A synthetic SimResult summarising an explicit latency stream."""
    stats = OnlineStats()
    for value in samples:
        stats.add(value)
    return SimResult(
        scheduler="synthetic", load=0.5, config=config,
        mean_latency=stats.mean, std_latency=stats.std,
        min_latency=stats.min if stats.count else math.nan,
        max_latency=stats.max if stats.count else math.nan,
        offered=stats.count, forwarded=stats.count, dropped=0,
        throughput=0.0,
    )


class TestSerialFidelity:
    def test_workers_one_is_bit_identical_to_direct_runs(self):
        spec = quick_spec()
        run = ParallelRunner(workers=1).run(spec)
        for name, load in spec.grid_keys():
            direct = run_simulation(spec.config, name, load)
            engine = run.get(name, load)
            assert engine.mean_latency == direct.mean_latency
            assert engine.std_latency == direct.std_latency
            assert engine.forwarded == direct.forwarded
            assert engine.throughput == direct.throughput

    def test_single_replicate_passes_through_unmerged(self):
        spec = quick_spec(loads=(0.5,))
        run = ParallelRunner(workers=1).run(spec)
        assert run.get("lcf_central", 0.5) is run.outcomes[0].result


class TestParallelEqualsSerial:
    def test_worker_count_does_not_change_statistics(self):
        spec = quick_spec(loads=(0.5, 0.8), replicates=2)
        serial = ParallelRunner(workers=1).run(spec)
        parallel = ParallelRunner(workers=2).run(spec)
        for key, merged in serial.merged.items():
            other = parallel.merged[key]
            assert other.mean_latency == merged.mean_latency
            assert other.std_latency == merged.std_latency
            assert other.min_latency == merged.min_latency
            assert other.max_latency == merged.max_latency
            assert other.forwarded == merged.forwarded
            assert other.offered == merged.offered

    def test_replicate_shards_preserved_in_order(self):
        spec = quick_spec(schedulers=("lcf_central",), loads=(0.5,), replicates=3)
        run = ParallelRunner(workers=2).run(spec)
        shards = run.replicates("lcf_central", 0.5)
        assert [s.config.seed for s in shards] == [3, 4, 5]


class TestShardMergeProperty:
    @given(
        st.lists(
            st.lists(st.floats(1.0, 1e4), min_size=0, max_size=40),
            min_size=2, max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_nway_sharded_stats_equal_single_stream(self, shards):
        """mean/std/min/max/count of merged shards == one-pass stats."""
        config = SimConfig(n_ports=4, warmup_slots=10, measure_slots=100)
        merged = merge_results([result_from_samples(s, config) for s in shards])
        whole = OnlineStats()
        for shard in shards:
            for value in shard:
                whole.add(value)
        assert merged.forwarded == whole.count
        if whole.count == 0:
            assert math.isnan(merged.mean_latency)
            assert math.isnan(merged.min_latency)
            assert math.isnan(merged.max_latency)
            return
        assert merged.min_latency == whole.min
        assert merged.max_latency == whole.max
        assert merged.mean_latency == pytest.approx(whole.mean, rel=1e-9)
        if whole.count > 1:
            assert merged.std_latency == pytest.approx(
                whole.std, rel=1e-6, abs=1e-9
            )

    def test_sharded_sweep_merges_exactly_like_manual_fold(self):
        """Engine merge == folding the per-seed results by hand."""
        spec = quick_spec(schedulers=("islip",), loads=(0.8,), replicates=3)
        run = ParallelRunner(workers=2).run(spec)
        manual = [
            run_simulation(spec.config.with_(seed=spec.config.seed + r), "islip", 0.8)
            for r in range(3)
        ]
        expected = merge_results(manual)
        merged = run.get("islip", 0.8)
        assert merged.mean_latency == expected.mean_latency
        assert merged.std_latency == expected.std_latency
        assert merged.min_latency == expected.min_latency
        assert merged.max_latency == expected.max_latency
        assert merged.forwarded == expected.forwarded
        # And the reconstruction round-trip is consistent.
        assert stats_from_result(manual[0]).count == manual[0].forwarded


class TestCacheAndResume:
    def test_rerun_is_pure_cache_hits(self, tmp_path, monkeypatch):
        spec = quick_spec()
        first = ParallelRunner(workers=1, cache=tmp_path).run(spec)
        assert first.report.computed == spec.n_points()

        def explode(*args, **kwargs):
            raise AssertionError("cache miss recomputed a cached point")

        monkeypatch.setattr(runner_mod, "run_simulation", explode)
        second = ParallelRunner(workers=1, cache=tmp_path).run(spec)
        assert second.report.computed == 0
        assert second.report.cache_hits == spec.n_points()
        for key, merged in first.merged.items():
            assert second.merged[key].mean_latency == merged.mean_latency

    def test_interrupted_sweep_resumes_missing_points_only(self, tmp_path, monkeypatch):
        # Simulate an interrupt: only the first load's points completed.
        prefix = quick_spec(loads=(0.3,))
        ParallelRunner(workers=1, cache=tmp_path).run(prefix)

        calls = []
        original = runner_mod.run_simulation

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_simulation", counting)
        full = quick_spec(loads=(0.3, 0.8))
        resumed = ParallelRunner(workers=1, cache=tmp_path).run(full)
        assert len(calls) == 2  # only the load-0.8 points
        assert resumed.report.cache_hits == 2
        fresh = ParallelRunner(workers=1).run(full)
        for key, merged in fresh.merged.items():
            assert resumed.merged[key].mean_latency == merged.mean_latency

    def test_cache_object_and_path_both_accepted(self, tmp_path):
        spec = quick_spec(schedulers=("outbuf",), loads=(0.5,))
        cache = ResultCache(tmp_path)
        ParallelRunner(workers=1, cache=cache).run(spec)
        rerun = ParallelRunner(workers=1, cache=str(tmp_path)).run(spec)
        assert rerun.report.cache_hits == 1


class TestReporting:
    def test_report_accounts_for_every_point(self):
        spec = quick_spec(replicates=2)
        run = ParallelRunner(workers=1).run(spec)
        report = run.report
        assert report.total_points == spec.n_points()
        assert report.computed + report.cache_hits == report.total_points
        assert report.points_per_sec > 0
        assert set(report.scheduler_seconds) == set(spec.schedulers)
        assert "pts/s" in report.summary()

    def test_progress_callable_receives_lines(self):
        lines = []
        spec = quick_spec(schedulers=("lcf_central",), loads=(0.5,))
        ParallelRunner(workers=1, progress=lines.append).run(spec)
        assert any("lcf_central" in line for line in lines)
        assert any("ETA" in line for line in lines)
