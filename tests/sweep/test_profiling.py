"""Sweep-runner profiling hooks and worker telemetry."""

import pstats

from repro.sim.config import SimConfig
from repro.sweep.runner import ParallelRunner, WorkerTelemetry
from repro.sweep.spec import SweepSpec


def small_spec(seed=1):
    return SweepSpec(
        schedulers=("lcf_central", "islip"),
        loads=(0.5, 0.8),
        config=SimConfig(
            n_ports=4, warmup_slots=10, measure_slots=60, seed=seed
        ),
    )


def test_profile_dir_gets_one_stats_file_per_point(tmp_path):
    profile_dir = tmp_path / "prof"
    run = ParallelRunner(profile_dir=profile_dir).run(small_spec())
    files = sorted(profile_dir.glob("*.prof"))
    assert len(files) == run.report.computed == 4
    # Filenames carry the point label, so a directory listing is a map.
    assert any("lcf_central" in f.name for f in files)
    # Every dump is loadable with the stdlib profiler tooling.
    stats = pstats.Stats(str(files[0]))
    assert stats.total_calls > 0


def test_profiling_off_by_default(tmp_path):
    run = ParallelRunner().run(small_spec())
    assert run.report.profile_dir is None
    assert not list(tmp_path.iterdir())


def test_worker_telemetry_accounts_every_computed_point():
    run = ParallelRunner().run(small_spec())
    stats = run.report.worker_stats
    assert stats and all(isinstance(w, WorkerTelemetry) for w in stats)
    assert sum(w.points for w in stats) == run.report.computed
    assert all(w.pid > 0 for w in stats)
    assert all(w.points_per_sec >= 0 for w in stats)


def test_merge_seconds_and_hit_rate_populated(tmp_path):
    cache = tmp_path / "cache"
    first = ParallelRunner(cache=cache).run(small_spec())
    assert first.report.merge_seconds >= 0.0
    assert first.report.cache_hit_rate == 0.0
    second = ParallelRunner(cache=cache).run(small_spec())
    assert second.report.cache_hit_rate == 1.0
    assert second.report.worker_stats == []  # nothing computed


def test_summary_mentions_telemetry(tmp_path):
    profile_dir = tmp_path / "prof"
    run = ParallelRunner(profile_dir=profile_dir).run(small_spec())
    text = run.report.summary()
    assert "hit rate" in text
    assert "merge" in text
    assert "worker" in text
    assert str(profile_dir) in text


def test_profiled_results_match_unprofiled(tmp_path):
    # cProfile wraps the call but must not change the simulation.
    spec = small_spec(seed=5)
    plain = ParallelRunner().run(spec)
    profiled = ParallelRunner(profile_dir=tmp_path / "p").run(spec)
    for key, result in plain.merged.items():
        assert profiled.merged[key].mean_latency == result.mean_latency
        assert profiled.merged[key].forwarded == result.forwarded
