"""On-disk result cache: keys, round-trips, corruption handling."""

import json
import math

import numpy as np
import pytest

from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult, run_simulation
from repro.sweep import ResultCache, SweepSpec, point_key
from repro.sweep.cache import payload_to_result, result_to_payload


def spec_and_point(**kw):
    defaults = dict(
        schedulers=("lcf_central",),
        loads=(0.5,),
        config=SimConfig(n_ports=4, warmup_slots=20, measure_slots=200,
                         voq_capacity=16, pq_capacity=32, seed=5),
    )
    defaults.update(kw)
    spec = SweepSpec(**defaults)
    return spec, spec.points()[0]


def simulate(spec, point):
    return run_simulation(
        spec.point_config(point), point.scheduler, point.load,
        traffic=point.traffic, traffic_kwargs=dict(point.traffic_kwargs),
    )


class TestPointKey:
    def test_stable_across_calls(self):
        spec, point = spec_and_point()
        assert point_key(spec.config, point) == point_key(spec.config, point)

    def test_sensitive_to_every_input(self):
        spec, point = spec_and_point()
        base = point_key(spec.config, point)
        variants = [
            spec_and_point(loads=(0.6,)),
            spec_and_point(schedulers=("islip",)),
            spec_and_point(traffic="hotspot", traffic_kwargs=(("fraction", 0.3),)),
            spec_and_point(config=spec.config.with_(n_ports=8)),
            spec_and_point(config=spec.config.with_(seed=6)),
        ]
        keys = {point_key(s.config, p) for s, p in variants}
        assert base not in keys and len(keys) == len(variants)

    def test_replicates_get_distinct_keys(self):
        spec, _ = spec_and_point(replicates=3)
        keys = {point_key(spec.config, p) for p in spec.points()}
        assert len(keys) == 3

    def test_empty_fault_kwargs_preserve_pre_fault_keys(self):
        """Fault-free points must hash exactly as they did before fault
        injection existed, so old cache entries stay valid and a
        zero-fault resilience baseline is served from a plain sweep's
        cache."""
        spec, point = spec_and_point()
        faulted_spec, faulted_point = spec_and_point(fault_kwargs=())
        assert point.fault_kwargs == ()
        assert point_key(spec.config, point) == point_key(
            faulted_spec.config, faulted_point
        )

    def test_fault_kwargs_fold_into_key(self):
        from repro.faults import FaultPlan

        spec, point = spec_and_point()
        base = point_key(spec.config, point)
        keys = {
            point_key(s.config, p)
            for s, p in (
                spec_and_point(fault_kwargs=FaultPlan.message_loss(0.1).to_spec()),
                spec_and_point(fault_kwargs=FaultPlan.message_loss(0.2).to_spec()),
            )
        }
        assert base not in keys and len(keys) == 2


class TestRoundTrip:
    def test_simresult_payload_roundtrip(self):
        spec, point = spec_and_point()
        result = simulate(spec, point)
        back = payload_to_result(json.loads(json.dumps(result_to_payload(result))))
        assert back == result

    def test_nan_percentiles_and_service_roundtrip(self):
        spec, point = spec_and_point()
        result = run_simulation(
            spec.config, "lcf_central", 0.5,
            collect_service=True, collect_percentiles=True,
        )
        back = payload_to_result(json.loads(json.dumps(
            result_to_payload(result), allow_nan=True)))
        assert back.percentiles == result.percentiles
        assert np.array_equal(back.service_counts, result.service_counts)

    def test_nan_statistics_roundtrip(self):
        # A warmup-only run: every latency statistic is NaN.
        spec, point = spec_and_point(
            config=SimConfig(n_ports=4, warmup_slots=10, measure_slots=0),
        )
        result = simulate(spec, point)
        back = payload_to_result(json.loads(json.dumps(
            result_to_payload(result), allow_nan=True)))
        assert math.isnan(back.throughput) and math.isnan(back.mean_latency)


class TestCacheStore:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec, point = spec_and_point()
        key = point_key(spec.config, point)
        assert cache.get(key) is None and cache.misses == 1
        result = simulate(spec, point)
        cache.put(key, result)
        assert key in cache and len(cache) == 1
        assert cache.get(key) == result and cache.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec, point = spec_and_point()
        key = point_key(spec.config, point)
        cache.put(key, simulate(spec, point))
        cache.path_for(key).write_text('{"truncated": ')
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec, point = spec_and_point()
        cache.put(point_key(spec.config, point), simulate(spec, point))
        assert cache.clear() == 1 and len(cache) == 0

    def test_missing_root_is_created(self, tmp_path):
        root = tmp_path / "nested" / "cache"
        ResultCache(root)
        assert root.is_dir()
