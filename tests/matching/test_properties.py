"""Structural matching properties."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.matching.hopcroft_karp import hopcroft_karp, maximum_matching_size
from repro.matching.properties import (
    choice_histogram,
    deficiency,
    greedy_matching_lower_bound,
    hall_violator,
    has_augmenting_path,
    matching_efficiency,
    request_degrees,
)
from repro.types import NO_GRANT

from tests.conftest import request_matrices


class TestEfficiency:
    def test_maximum_matching_has_efficiency_one(self):
        requests = np.ones((4, 4), dtype=bool)
        assert matching_efficiency(requests, hopcroft_karp(requests)) == 1.0

    def test_empty_requests_have_efficiency_one(self):
        requests = np.zeros((3, 3), dtype=bool)
        assert matching_efficiency(requests, np.full(3, NO_GRANT)) == 1.0

    def test_half_matching(self):
        requests = np.eye(4, dtype=bool)
        schedule = np.array([0, 1, NO_GRANT, NO_GRANT], dtype=np.int64)
        assert matching_efficiency(requests, schedule) == pytest.approx(0.5)


class TestAugmentingPath:
    def test_suboptimal_matching_has_augmenting_path(self):
        requests = np.array([[True, True], [True, False]])
        schedule = np.array([0, NO_GRANT], dtype=np.int64)
        assert has_augmenting_path(requests, schedule)

    def test_maximum_matching_has_no_augmenting_path(self):
        requests = np.array([[True, True], [True, False]])
        assert not has_augmenting_path(requests, hopcroft_karp(requests))


class TestDeficiencyAndHall:
    def test_perfectly_matchable_has_zero_deficiency(self):
        assert deficiency(np.eye(4, dtype=bool)) == 0

    def test_column_contention_creates_deficiency(self):
        requests = np.zeros((3, 3), dtype=bool)
        requests[:, 0] = True
        assert deficiency(requests) == 2

    def test_hall_violator_found_for_contention(self):
        requests = np.zeros((3, 3), dtype=bool)
        requests[0, 0] = requests[1, 0] = True
        violator = hall_violator(requests)
        assert violator == (0, 1)

    def test_no_hall_violator_when_matchable(self):
        assert hall_violator(np.eye(3, dtype=bool)) is None

    @given(request_matrices(max_n=5))
    @settings(max_examples=40, deadline=None)
    def test_deficiency_positive_iff_hall_violated(self, requests):
        assert (deficiency(requests) > 0) == (hall_violator(requests) is not None)


class TestDegrees:
    def test_request_degrees_matches_fig3_nrq(self):
        requests = np.array(
            [[0, 1, 1, 0], [1, 0, 1, 1], [1, 0, 1, 1], [0, 1, 0, 0]], dtype=bool
        )
        assert request_degrees(requests).tolist() == [2, 3, 3, 1]

    def test_choice_histogram(self):
        requests = np.array(
            [[0, 1, 1, 0], [1, 0, 1, 1], [1, 0, 1, 1], [0, 1, 0, 0]], dtype=bool
        )
        assert choice_histogram(requests) == {1: 1, 2: 1, 3: 2}

    @given(request_matrices(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_greedy_lower_bound_holds_for_maximum(self, requests):
        assert maximum_matching_size(requests) >= greedy_matching_lower_bound(requests)
