"""Maximum-size matching, cross-checked against networkx."""

import networkx as nx
import numpy as np
from hypothesis import given, settings

from repro.matching.hopcroft_karp import hopcroft_karp, maximum_matching_size
from repro.matching.verify import is_valid_schedule, matching_size
from repro.types import NO_GRANT

from tests.conftest import request_matrices


def networkx_max_matching_size(requests: np.ndarray) -> int:
    """Reference: networkx's Hopcroft-Karp on the bipartite graph."""
    n = requests.shape[0]
    graph = nx.Graph()
    graph.add_nodes_from(range(n), bipartite=0)
    graph.add_nodes_from(range(n, 2 * n), bipartite=1)
    for i, j in zip(*np.nonzero(requests)):
        graph.add_edge(int(i), int(j) + n)
    matching = nx.bipartite.maximum_matching(graph, top_nodes=range(n))
    return len(matching) // 2


class TestKnownCases:
    def test_empty_matrix(self):
        requests = np.zeros((4, 4), dtype=bool)
        schedule = hopcroft_karp(requests)
        assert (schedule == NO_GRANT).all()

    def test_identity_matrix(self):
        requests = np.eye(5, dtype=bool)
        schedule = hopcroft_karp(requests)
        assert (schedule == np.arange(5)).all()

    def test_full_matrix_gives_perfect_matching(self):
        requests = np.ones((6, 6), dtype=bool)
        assert maximum_matching_size(requests) == 6

    def test_single_column_contention(self):
        # All inputs want output 0: only one can win.
        requests = np.zeros((4, 4), dtype=bool)
        requests[:, 0] = True
        assert maximum_matching_size(requests) == 1

    def test_augmenting_path_is_found(self):
        # Greedy row-order matching would get 1; the maximum is 2.
        requests = np.array(
            [
                [True, True],
                [True, False],
            ]
        )
        assert maximum_matching_size(requests) == 2

    def test_fig3_matrix_has_perfect_matching(self):
        requests = np.array(
            [[0, 1, 1, 0], [1, 0, 1, 1], [1, 0, 1, 1], [0, 1, 0, 0]], dtype=bool
        )
        assert maximum_matching_size(requests) == 4

    def test_long_augmenting_chain(self):
        # A chain structure requiring multi-edge augmentation.
        n = 6
        requests = np.zeros((n, n), dtype=bool)
        for i in range(n):
            requests[i, i] = True
            if i + 1 < n:
                requests[i, i + 1] = True
        assert maximum_matching_size(requests) == n

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        requests = rng.random((8, 8)) < 0.3
        first = hopcroft_karp(requests)
        second = hopcroft_karp(requests)
        assert (first == second).all()


class TestAgainstNetworkx:
    @given(request_matrices(max_n=7))
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx_size(self, requests):
        assert maximum_matching_size(requests) == networkx_max_matching_size(requests)

    @given(request_matrices(max_n=7))
    @settings(max_examples=60, deadline=None)
    def test_schedule_is_valid(self, requests):
        schedule = hopcroft_karp(requests)
        assert is_valid_schedule(requests, schedule)

    @given(request_matrices(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_size_consistent_with_schedule(self, requests):
        schedule = hopcroft_karp(requests)
        assert matching_size(schedule) == maximum_matching_size(requests)
