"""Schedule validity / maximality checkers."""

import numpy as np
import pytest
from hypothesis import given

from repro.matching.verify import (
    is_conflict_free,
    is_maximal,
    is_valid_schedule,
    matching_size,
    output_view,
    schedule_to_matrix,
    schedule_to_pairs,
)
from repro.types import NO_GRANT

from tests.conftest import request_matrices


def _sched(*values):
    return np.array(values, dtype=np.int64)


class TestConflictFree:
    def test_empty_schedule_is_conflict_free(self):
        assert is_conflict_free(_sched(-1, -1, -1))

    def test_distinct_grants_are_conflict_free(self):
        assert is_conflict_free(_sched(2, 0, 1))

    def test_duplicate_output_is_conflict(self):
        assert not is_conflict_free(_sched(1, 1, -1))

    def test_no_grants_mixed_with_grants(self):
        assert is_conflict_free(_sched(-1, 3, -1, 0))


class TestValidSchedule:
    def test_valid_grant(self):
        requests = np.array([[True, False], [False, True]])
        assert is_valid_schedule(requests, _sched(0, 1))

    def test_grant_without_request_is_invalid(self):
        requests = np.array([[True, False], [False, True]])
        assert not is_valid_schedule(requests, _sched(1, -1))

    def test_out_of_range_grant_is_invalid(self):
        requests = np.ones((2, 2), dtype=bool)
        assert not is_valid_schedule(requests, _sched(0, 5))

    def test_wrong_shape_is_invalid(self):
        requests = np.ones((3, 3), dtype=bool)
        assert not is_valid_schedule(requests, _sched(0, 1))

    def test_conflicting_schedule_is_invalid(self):
        requests = np.ones((2, 2), dtype=bool)
        assert not is_valid_schedule(requests, _sched(0, 0))


class TestMaximal:
    def test_full_matching_is_maximal(self):
        requests = np.ones((3, 3), dtype=bool)
        assert is_maximal(requests, _sched(0, 1, 2))

    def test_augmentable_single_edge_is_not_maximal(self):
        requests = np.array([[True, False], [False, True]])
        assert not is_maximal(requests, _sched(0, -1))

    def test_empty_requests_are_trivially_maximal(self):
        requests = np.zeros((3, 3), dtype=bool)
        assert is_maximal(requests, _sched(-1, -1, -1))

    def test_blocked_input_does_not_break_maximality(self):
        # Input 1 requests only output 0, which is taken: maximal.
        requests = np.array([[True, False], [True, False]])
        assert is_maximal(requests, _sched(0, -1))


class TestConversions:
    def test_matching_size_counts_grants(self):
        assert matching_size(_sched(1, -1, 0)) == 2

    def test_schedule_to_pairs(self):
        assert schedule_to_pairs(_sched(2, -1, 0)) == [(0, 2), (2, 0)]

    def test_schedule_to_matrix_roundtrip(self):
        schedule = _sched(1, -1, 2)
        matrix = schedule_to_matrix(schedule)
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] and matrix[2, 2]
        assert matrix.sum() == 2

    def test_output_view_inverts_schedule(self):
        schedule = _sched(1, -1, 0)
        out = output_view(schedule)
        assert out[1] == 0 and out[0] == 2 and out[2] == NO_GRANT

    @given(request_matrices())
    def test_full_identity_schedule_valid_iff_diagonal_requested(self, requests):
        n = requests.shape[0]
        schedule = np.arange(n, dtype=np.int64)
        assert is_valid_schedule(requests, schedule) == bool(
            np.diag(requests).all()
        )
