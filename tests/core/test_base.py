"""Scheduler base-class contract and the rotating tie-break helper."""

import numpy as np
import pytest

from repro.core.base import IterativeScheduler, Scheduler, rotating_argmin
from repro.types import NO_GRANT, empty_schedule


class _Stub(Scheduler):
    name = "stub"

    def _schedule(self, requests):
        # Grant nothing; also mutate the input to prove callers are isolated.
        requests[:] = False
        return empty_schedule(self.n)


class TestSchedulerContract:
    def test_rejects_nonpositive_port_count(self):
        with pytest.raises(ValueError):
            _Stub(0)

    def test_rejects_wrong_matrix_size(self):
        scheduler = _Stub(4)
        with pytest.raises(ValueError):
            scheduler.schedule(np.ones((3, 3), dtype=bool))

    def test_rejects_non_square_matrix(self):
        scheduler = _Stub(4)
        with pytest.raises(ValueError):
            scheduler.schedule(np.ones((4, 3), dtype=bool))

    def test_caller_matrix_is_not_mutated(self):
        scheduler = _Stub(3)
        requests = np.ones((3, 3), dtype=bool)
        scheduler.schedule(requests)
        assert requests.all()

    def test_accepts_int_matrix(self):
        scheduler = _Stub(2)
        schedule = scheduler.schedule(np.array([[1, 0], [0, 1]]))
        assert (schedule == NO_GRANT).all()

    def test_schedule_checked_raises_on_invalid(self):
        class Bad(Scheduler):
            name = "bad"

            def _schedule(self, requests):
                return np.zeros(self.n, dtype=np.int64)  # everyone -> output 0

        with pytest.raises(AssertionError):
            Bad(3).schedule_checked(np.ones((3, 3), dtype=bool))


class TestIterativeScheduler:
    def test_default_iterations_is_four(self):
        class Iter(IterativeScheduler):
            def _schedule(self, requests):
                return empty_schedule(self.n)

        assert Iter(4).iterations == 4

    def test_rejects_zero_iterations(self):
        class Iter(IterativeScheduler):
            def _schedule(self, requests):
                return empty_schedule(self.n)

        with pytest.raises(ValueError):
            Iter(4, iterations=0)


class TestRotatingArgmin:
    def test_picks_minimum(self):
        keys = np.array([3, 1, 2])
        candidates = np.array([True, True, True])
        assert rotating_argmin(keys, candidates, start=0) == 1

    def test_tie_broken_by_chain_from_start(self):
        keys = np.array([1, 1, 1, 1])
        candidates = np.array([True, True, True, True])
        assert rotating_argmin(keys, candidates, start=2) == 2

    def test_chain_wraps_around(self):
        keys = np.array([1, 1, 5, 5])
        candidates = np.array([True, True, True, True])
        assert rotating_argmin(keys, candidates, start=3) == 0

    def test_ignores_non_candidates(self):
        keys = np.array([0, 5, 5])
        candidates = np.array([False, True, True])
        assert rotating_argmin(keys, candidates, start=0) == 1

    def test_raises_with_no_candidates(self):
        with pytest.raises(ValueError):
            rotating_argmin(np.array([1, 2]), np.array([False, False]), start=0)

    def test_start_equal_to_min_candidate(self):
        keys = np.array([2, 2, 9])
        candidates = np.array([True, True, False])
        assert rotating_argmin(keys, candidates, start=1) == 1

    def test_fully_masked_column_raises(self):
        # An output whose every requester is masked out (e.g. all down)
        # must fail loudly rather than grant an arbitrary input.
        keys = np.array([1, 1, 1, 1])
        candidates = np.zeros(4, dtype=bool)
        with pytest.raises(ValueError):
            rotating_argmin(keys, candidates, start=2)

    def test_single_candidate_wins_regardless_of_key_or_start(self):
        keys = np.array([9, 0, 0, 9])
        candidates = np.array([False, False, False, True])
        for start in range(4):
            assert rotating_argmin(keys, candidates, start=start) == 3

    def test_wrap_at_last_index(self):
        # start = n-1 with the chain's minimum sitting at index n-1:
        # no wrap needed, the boundary element itself wins the tie.
        keys = np.array([3, 3, 3, 3])
        candidates = np.ones(4, dtype=bool)
        assert rotating_argmin(keys, candidates, start=3) == 3

    def test_wrap_from_last_index_to_front(self):
        # start = n-1 but index n-1 is not a candidate: the cyclic chain
        # must wrap to the front instead of falling off the array.
        keys = np.array([5, 5, 5, 5])
        candidates = np.array([True, True, True, False])
        assert rotating_argmin(keys, candidates, start=3) == 0
