"""Precalculated-schedule stage (Section 4.3, Figure 7)."""

import numpy as np
import pytest

from repro.core.lcf_central import LCFCentralRR
from repro.core.precalc import PrecalcScheduler, check_precalc_integrity
from repro.types import NO_GRANT


def fig7_setup() -> tuple[np.ndarray, np.ndarray]:
    """Figure 7: a multicast connection precalculated from I3 to T1 and
    T3; regular unicast requests compete for the remaining targets."""
    requests = np.zeros((4, 4), dtype=bool)
    requests[0, 0] = True  # I0 -> T0 (NRQ 1)
    requests[1, [0, 2]] = True  # I1 -> T0, T2 (NRQ 2)
    requests[2, [0, 2]] = True  # I2 -> T0, T2 (NRQ 2)
    precalc = np.zeros((4, 4), dtype=bool)
    precalc[3, 1] = precalc[3, 3] = True
    return requests, precalc


class TestIntegrityCheck:
    def test_conflict_free_schedule_passes(self):
        _, precalc = fig7_setup()
        accepted, dropped = check_precalc_integrity(precalc)
        assert (accepted == precalc).all()
        assert dropped == []

    def test_conflicting_target_keeps_lowest_initiator(self):
        precalc = np.zeros((4, 4), dtype=bool)
        precalc[1, 2] = precalc[3, 2] = True  # both claim T2
        accepted, dropped = check_precalc_integrity(precalc)
        assert accepted[1, 2] and not accepted[3, 2]
        assert dropped == [(3, 2)]

    def test_multiple_conflicts_all_reported(self):
        precalc = np.ones((3, 3), dtype=bool)
        accepted, dropped = check_precalc_integrity(precalc)
        assert accepted.sum() == 3  # one winner per target
        assert len(dropped) == 6

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            check_precalc_integrity(np.ones((2, 3), dtype=bool))


class TestTwoStageScheduling:
    def test_fig7_multicast_and_lcf_coexist(self):
        requests, precalc = fig7_setup()
        scheduler = PrecalcScheduler(4)
        result = scheduler.schedule(requests, precalc)
        assert result.integrity_ok
        # Multicast: I3 drives both T1 and T3.
        assert result.output_schedule[1] == 3
        assert result.output_schedule[3] == 3
        # Stage 2 LCF fills T0 and T2 from the unicast requests:
        # RR offsets (0,0) -> position [I0,T0] wins T0.
        assert result.output_schedule[0] == 0
        assert result.output_schedule[2] in (1, 2)

    def test_precalc_input_excluded_from_stage2(self):
        requests = np.ones((3, 3), dtype=bool)
        precalc = np.zeros((3, 3), dtype=bool)
        precalc[0, 1] = True
        result = PrecalcScheduler(3).schedule(requests, precalc)
        # I0 transmits its precalculated packet; stage 2 must not grant it.
        assert result.lcf_schedule[0] == NO_GRANT
        assert result.output_schedule[1] == 0

    def test_precalc_target_excluded_from_stage2(self):
        requests = np.ones((3, 3), dtype=bool)
        precalc = np.zeros((3, 3), dtype=bool)
        precalc[2, 0] = True
        result = PrecalcScheduler(3).schedule(requests, precalc)
        assert result.output_schedule[0] == 2
        assert (result.lcf_schedule != 0).all()

    def test_no_precalc_reduces_to_plain_lcf(self):
        requests = np.ones((4, 4), dtype=bool)
        wrapped = PrecalcScheduler(4)
        reference = LCFCentralRR(4)
        result = wrapped.schedule(requests)
        expected = reference.schedule(requests)
        for i, j in enumerate(expected):
            if j != NO_GRANT:
                assert result.output_schedule[j] == i

    def test_dropped_conflicting_pair_frees_input_for_lcf(self):
        requests = np.zeros((3, 3), dtype=bool)
        requests[2, 2] = True
        precalc = np.zeros((3, 3), dtype=bool)
        precalc[1, 0] = precalc[2, 0] = True  # I2 loses the conflict
        result = PrecalcScheduler(3).schedule(requests, precalc)
        assert not result.integrity_ok
        assert result.dropped_precalc == [(2, 0)]
        # I2's precalc was fully dropped, so its unicast request is live.
        assert result.output_schedule[2] == 2

    def test_connections_listing(self):
        requests, precalc = fig7_setup()
        result = PrecalcScheduler(4).schedule(requests, precalc)
        connections = result.connections()
        assert (3, 1) in connections and (3, 3) in connections
        assert len(connections) == len(set(connections))

    def test_wrapped_scheduler_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PrecalcScheduler(4, scheduler=LCFCentralRR(3))

    def test_rr_state_advances_even_with_precalc(self):
        scheduler = PrecalcScheduler(4)
        inner = scheduler.scheduler
        precalc = np.zeros((4, 4), dtype=bool)
        precalc[0, 0] = True
        scheduler.schedule(np.zeros((4, 4), dtype=bool), precalc)
        assert inner.rr_offsets == (1, 0)
