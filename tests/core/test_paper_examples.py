"""Panel-by-panel replays of the paper's worked examples.

Figure 3 shows four panels of one central LCF-RR scheduling cycle, each
with the recalculated NRQ column and the granted request; the scheduling
trace must match every panel, not just the final matching.
"""

import numpy as np

from repro.core.lcf_central import LCFCentralRR
from repro.types import NO_GRANT


class TestFigure3Panels:
    """The Figure 3 cycle: order T0, T1, T2, T3; diagonal at [I1, T0]."""

    def _traced_cycle(self, fig3_requests):
        scheduler = LCFCentralRR(4)
        scheduler.set_rr_offsets(1, 0)
        scheduler.record_trace = True
        schedule = scheduler.schedule(fig3_requests)
        return schedule, scheduler.last_trace

    def test_panel1_initial_nrq(self, fig3_requests):
        _, trace = self._traced_cycle(fig3_requests)
        # Panel 1: NRQ = [2, 3, 3, 1] before T0 is scheduled.
        assert trace[0].output == 0
        assert trace[0].nrq_before.tolist() == [2, 3, 3, 1]

    def test_panel1_t0_goes_to_rr_position(self, fig3_requests):
        _, trace = self._traced_cycle(fig3_requests)
        # "The round-robin position favors I1 and its request is granted."
        assert trace[0].rr_row == 1
        assert trace[0].granted == 1
        assert trace[0].rr_won

    def test_panel2_t1_priority_grant(self, fig3_requests):
        _, trace = self._traced_cycle(fig3_requests)
        # Panel 2: I1 is out; I2 lost its T0 request (NRQ 3 -> 2).
        # "There are requests for this target by I0 and I3. Since I3 has
        # higher priority, its request is granted."
        step = trace[1]
        assert step.output == 1
        assert step.nrq_before.tolist() == [2, 0, 2, 1]
        assert step.granted == 3
        assert not step.rr_won  # [I2, T1] was the RR position, no request

    def test_panel3_t2_choice_between_i0_and_i2(self, fig3_requests):
        _, trace = self._traced_cycle(fig3_requests)
        # Panel 3: I0 dropped its T1 request (2 -> 1).
        # "In this case, I0 has higher priority and its request is granted."
        step = trace[2]
        assert step.output == 2
        assert step.nrq_before.tolist() == [1, 0, 2, 0]
        assert step.granted == 0

    def test_panel4_t3_no_choice(self, fig3_requests):
        _, trace = self._traced_cycle(fig3_requests)
        # Panel 4: "There is no choice and the request by I2 is granted."
        step = trace[3]
        assert step.output == 3
        assert step.granted == 2

    def test_final_matching(self, fig3_requests):
        schedule, _ = self._traced_cycle(fig3_requests)
        assert schedule.tolist() == [2, 0, 3, 1]

    def test_paper_notes_unfair_max_throughput_alternatives(self, fig3_requests):
        """Section 3 observes two maximum matchings of size 4 exist
        ([I1,T0],[I3,T1],[I0,T2],[I2,T3] and the I2/I1-swapped one) —
        confirm the LCF-RR result is one of them (it grants all four)."""
        schedule, _ = self._traced_cycle(fig3_requests)
        assert (schedule != NO_GRANT).all()

    def test_trace_disabled_by_default(self, fig3_requests):
        scheduler = LCFCentralRR(4)
        scheduler.schedule(fig3_requests)
        assert scheduler.last_trace == []
