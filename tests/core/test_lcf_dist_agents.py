"""Message-passing distributed LCF: equivalence + wire accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcf_dist import LCFDistributed
from repro.core.lcf_dist_agents import (
    AcceptMsg,
    GrantMsg,
    LCFDistributedAgents,
    RequestMsg,
)
from repro.hw.comm import distributed_bits
from repro.matching.verify import is_valid_schedule, matching_size

from tests.conftest import request_matrices


class TestMessageFormats:
    def test_field_widths_match_figure10b(self):
        n = 16
        assert RequestMsg(0, 1, 3).bits(n) == 1 + 4
        assert GrantMsg(1, 0, 2).bits(n) == 1 + 4
        assert AcceptMsg(0, 1).bits(n) == 1


class TestEquivalence:
    @given(request_matrices(min_n=2, max_n=6), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_single_cycle_matches_matrix_implementation(self, requests, iterations):
        n = requests.shape[0]
        agents = LCFDistributedAgents(n, iterations)
        matrix = LCFDistributed(n, iterations)
        assert (agents.schedule(requests) == matrix.schedule(requests)).all()

    def test_long_run_stays_synchronised(self):
        """Pointers must evolve identically, so matchings agree forever."""
        rng = np.random.default_rng(0)
        n = 6
        agents = LCFDistributedAgents(n, iterations=4)
        matrix = LCFDistributed(n, iterations=4)
        for _ in range(100):
            requests = rng.random((n, n)) < 0.5
            assert (agents.schedule(requests) == matrix.schedule(requests)).all()

    @given(request_matrices(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_schedule_always_valid(self, requests):
        agents = LCFDistributedAgents(requests.shape[0])
        assert is_valid_schedule(requests, agents.schedule(requests))


class TestWireAccounting:
    def test_empty_matrix_sends_nothing(self):
        agents = LCFDistributedAgents(4)
        agents.schedule(np.zeros((4, 4), dtype=bool))
        assert agents.last_message_log.total_messages == 0

    def test_request_counts_match_protocol(self):
        # A permutation matrix: n requests, n grants, n accepts, done in
        # one iteration (iteration 2 has nothing left to send).
        n = 4
        agents = LCFDistributedAgents(n, iterations=4)
        agents.schedule(np.eye(n, dtype=bool))
        log = agents.last_message_log
        assert log.requests == n
        assert log.grants == n
        assert log.accepts == n

    def test_bits_never_exceed_section62_budget(self):
        """The paper's i*n^2*(2 log2 n + 3) is the wiring capacity; the
        actual traffic must fit inside it for every workload."""
        rng = np.random.default_rng(1)
        n, iterations = 8, 4
        agents = LCFDistributedAgents(n, iterations)
        budget = distributed_bits(n, iterations)
        for _ in range(50):
            requests = rng.random((n, n)) < rng.random()
            agents.schedule(requests)
            assert agents.last_message_log.total_bits <= budget

    def test_full_matrix_first_iteration_saturates_request_wires(self):
        # All n^2 request wires carry a message in iteration 1.
        n = 4
        agents = LCFDistributedAgents(n, iterations=1)
        agents.schedule(np.ones((n, n), dtype=bool))
        assert agents.last_message_log.requests == n * n

    def test_matched_ports_stop_talking(self):
        # After convergence on a permutation, extra iterations add zero
        # messages.
        n = 4
        one = LCFDistributedAgents(n, iterations=1)
        many = LCFDistributedAgents(n, iterations=8)
        one.schedule(np.eye(n, dtype=bool))
        many.schedule(np.eye(n, dtype=bool))
        assert (
            one.last_message_log.total_messages
            == many.last_message_log.total_messages
        )


class TestAgentIsolation:
    def test_agents_share_no_arrays(self):
        """Each agent's view is its own copy — mutating one input's row
        cannot leak into another agent or the caller."""
        n = 4
        agents = LCFDistributedAgents(n)
        requests = np.ones((n, n), dtype=bool)
        agents.schedule(requests)
        agents.inputs[0].row[:] = False
        assert requests.all()
        assert agents.inputs[1].row.all()

    def test_reset_rebuilds_agents(self):
        agents = LCFDistributedAgents(4)
        agents.schedule(np.ones((4, 4), dtype=bool))
        agents.reset()
        assert all(a.accept_ptr == 0 for a in agents.inputs)
        assert all(a.grant_ptr == 0 for a in agents.outputs)
        assert agents.last_message_log.total_messages == 0
