"""The Section 3 fairness/throughput range of RR coverage variants."""

import numpy as np
import pytest

from repro.analysis.fairness import saturated_service_counts
from repro.core.lcf_central import LCFCentralVariant, RRCoverage
from repro.core.rr_variants import guaranteed_fraction, make_variant
from repro.matching.verify import matching_size


class TestGuaranteedFraction:
    def test_pure_lcf_guarantees_nothing(self):
        assert guaranteed_fraction(RRCoverage.NONE, 16) == 0.0

    def test_diagonal_guarantees_one_over_n_squared(self):
        assert guaranteed_fraction(RRCoverage.DIAGONAL, 16) == pytest.approx(1 / 256)

    def test_single_guarantees_one_over_n_squared(self):
        assert guaranteed_fraction(RRCoverage.SINGLE, 4) == pytest.approx(1 / 16)

    def test_diagonal_first_guarantees_one_over_n(self):
        assert guaranteed_fraction(RRCoverage.DIAGONAL_FIRST, 16) == pytest.approx(1 / 16)


class TestSaturatedBounds:
    """Drive each variant with a permanently full matrix for n^2 cycles
    and verify the guaranteed service actually materialises."""

    @pytest.mark.parametrize(
        "coverage", [RRCoverage.SINGLE, RRCoverage.DIAGONAL, RRCoverage.DIAGONAL_FIRST]
    )
    def test_every_pair_served_within_n_squared_cycles(self, coverage):
        n = 4
        scheduler = LCFCentralVariant(n, coverage=coverage)
        counts = saturated_service_counts(scheduler, n * n)
        assert counts.min() >= 1, counts

    def test_diagonal_first_serves_every_pair_within_n_squared(self):
        n = 4
        scheduler = LCFCentralVariant(n, coverage=RRCoverage.DIAGONAL_FIRST)
        counts = saturated_service_counts(scheduler, n * n)
        # b/n bound: each pair is on the pre-granted diagonal once every
        # n^2 cycles, but each *input* is served every cycle.
        assert counts.sum(axis=1).min() == n * n

    def test_throughput_ordering_under_adversarial_pattern(self):
        # A pattern where the RR diagonal forces suboptimal grants:
        # pure LCF must achieve at least the matching size of the
        # diagonal-first variant on average.
        rng = np.random.default_rng(5)
        n = 6
        totals = {}
        for coverage in (RRCoverage.NONE, RRCoverage.DIAGONAL_FIRST):
            scheduler = LCFCentralVariant(n, coverage=coverage)
            rng_local = np.random.default_rng(5)
            total = 0
            for _ in range(300):
                requests = rng_local.random((n, n)) < 0.35
                total += matching_size(scheduler.schedule(requests))
            totals[coverage] = total
        assert totals[RRCoverage.NONE] >= totals[RRCoverage.DIAGONAL_FIRST]

    def test_make_variant_names(self):
        scheduler = make_variant(4, RRCoverage.SINGLE)
        assert scheduler.name == "lcf_central[single]"
        assert scheduler.n == 4
