"""Central LCF scheduler: Figure 2 semantics, rotation, maximality."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.lcf_central import LCFCentral, LCFCentralRR, LCFCentralVariant, RRCoverage
from repro.matching.hopcroft_karp import maximum_matching_size
from repro.matching.verify import is_maximal, is_valid_schedule, matching_size
from repro.types import NO_GRANT

from tests.conftest import request_matrices


class TestFigure3:
    """The paper's worked example (Section 3, Figure 3)."""

    def test_full_cycle_result(self, fig3_requests):
        scheduler = LCFCentralRR(4)
        scheduler.set_rr_offsets(1, 0)  # diagonal starts at [I1, T0]
        schedule = scheduler.schedule(fig3_requests)
        # Paper: T0 -> I1 (RR), T1 -> I3 (priority), T2 -> I0, T3 -> I2.
        assert schedule.tolist() == [2, 0, 3, 1]

    def test_rr_position_wins_over_lcf_priority(self):
        # I0 has one request (highest LCF priority) for T0, but the RR
        # position sits on [I1, T0], so I1 wins.
        requests = np.zeros((4, 4), dtype=bool)
        requests[0, 0] = True
        requests[1, 0] = requests[1, 1] = requests[1, 2] = True
        scheduler = LCFCentralRR(4)
        scheduler.set_rr_offsets(1, 0)
        schedule = scheduler.schedule(requests)
        assert schedule[1] == 0
        assert schedule[0] == NO_GRANT

    def test_pure_lcf_gives_priority_to_fewest_requests(self):
        requests = np.zeros((4, 4), dtype=bool)
        requests[0, 0] = True
        requests[1, 0] = requests[1, 1] = requests[1, 2] = True
        scheduler = LCFCentral(4)  # no RR-wins rule
        schedule = scheduler.schedule(requests)
        assert schedule[0] == 0  # least choice first

    def test_offsets_advance_per_figure2(self, fig3_requests):
        scheduler = LCFCentralRR(4)
        assert scheduler.rr_offsets == (0, 0)
        for expected_i, expected_j in [(1, 0), (2, 0), (3, 0), (0, 1), (1, 1)]:
            scheduler.schedule(fig3_requests)
            assert scheduler.rr_offsets == (expected_i, expected_j)

    def test_reset_restores_offsets(self, fig3_requests):
        scheduler = LCFCentralRR(4)
        scheduler.schedule(fig3_requests)
        scheduler.reset()
        assert scheduler.rr_offsets == (0, 0)


class TestNrqRecalculation:
    def test_priorities_recomputed_after_each_grant(self):
        # I0 requests T0 and T1; I1 requests T1 only. Scheduling order
        # T0 first: I0 takes T0 (only requester). When T1 is scheduled
        # I0 is out of the running (row cleared) -> I1 gets T1 even
        # though it started with equal nrq... crafted so a stale-nrq
        # implementation would differ.
        requests = np.array(
            [
                [True, True, False],
                [False, True, False],
                [False, False, False],
            ]
        )
        schedule = LCFCentral(3).schedule(requests)
        assert schedule.tolist() == [0, 1, NO_GRANT]

    def test_nrq_decrement_changes_later_priority(self):
        # I0: {T1, T2}; I1: {T0, T2}; I2: {T2}. Order T0, T1, T2.
        # T0 -> I1 (sole requester). T1 -> I0. T2 -> I2 (nrq 1).
        requests = np.array(
            [
                [False, True, True],
                [True, False, True],
                [False, False, True],
            ]
        )
        schedule = LCFCentral(3).schedule(requests)
        assert schedule.tolist() == [1, 0, 2]

    def test_requests_for_scheduled_columns_do_not_count(self):
        # After T0 is scheduled, I1's request for T0 must stop counting
        # towards its priority at T1: I1 (effective nrq 1) beats I2 (2).
        requests = np.array(
            [
                [True, False, False, False],
                [True, True, False, False],
                [False, True, True, False],
                [False, False, False, False],
            ]
        )
        schedule = LCFCentral(4).schedule(requests)
        assert schedule[0] == 0
        assert schedule[1] == 1
        assert schedule[2] == 2


class TestRotation:
    def test_target_order_rotates_with_j(self):
        # Both inputs request both outputs with equal nrq; which output
        # is scheduled first depends on J.
        requests = np.ones((2, 2), dtype=bool)
        scheduler = LCFCentralRR(2)
        results = [scheduler.schedule(requests).tolist() for _ in range(4)]
        assert len({tuple(r) for r in results}) > 1  # rotation changes outcomes

    def test_every_position_is_rr_position_once_per_n_squared(self):
        n = 3
        scheduler = LCFCentralRR(n)
        seen = set()
        for _ in range(n * n):
            i, j = scheduler.rr_offsets
            seen.update(((i + k) % n, (j + k) % n) for k in range(n))
            scheduler.schedule(np.zeros((n, n), dtype=bool))
        assert seen == {(i, j) for i in range(n) for j in range(n)}


class TestProperties:
    @given(request_matrices())
    @settings(max_examples=80, deadline=None)
    def test_schedule_always_valid(self, requests):
        scheduler = LCFCentralRR(requests.shape[0])
        assert is_valid_schedule(requests, scheduler.schedule(requests))

    @given(request_matrices())
    @settings(max_examples=80, deadline=None)
    def test_schedule_always_maximal(self, requests):
        # Both variants allocate every output that has any remaining
        # requester, so the matching is maximal.
        for cls in (LCFCentral, LCFCentralRR):
            scheduler = cls(requests.shape[0])
            assert is_maximal(requests, scheduler.schedule(requests))

    @given(request_matrices(min_n=2, max_n=6))
    @settings(max_examples=60, deadline=None)
    def test_matching_at_least_half_of_maximum(self, requests):
        scheduler = LCFCentral(requests.shape[0])
        size = matching_size(scheduler.schedule(requests))
        assert 2 * size >= maximum_matching_size(requests)

    @given(request_matrices(min_n=2, max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_given_state(self, requests):
        a, b = LCFCentral(requests.shape[0]), LCFCentral(requests.shape[0])
        assert (a.schedule(requests) == b.schedule(requests)).all()


class TestVariants:
    def test_diagonal_first_pregrants_whole_diagonal(self):
        n = 4
        requests = np.ones((n, n), dtype=bool)
        scheduler = LCFCentralVariant(n, coverage=RRCoverage.DIAGONAL_FIRST)
        schedule = scheduler.schedule(requests)
        # With offsets (0,0) the pre-granted diagonal is the identity.
        assert schedule.tolist() == [0, 1, 2, 3]

    def test_single_position_only_wins_at_its_column(self):
        n = 3
        # RR position (0, 0). I0 has many requests, I1 has one (for T0):
        # with SINGLE coverage the position (0,0) still wins T0.
        requests = np.array(
            [
                [True, True, True],
                [True, False, False],
                [False, False, False],
            ]
        )
        scheduler = LCFCentralVariant(n, coverage=RRCoverage.SINGLE)
        schedule = scheduler.schedule(requests)
        assert schedule[0] == 0

    def test_none_matches_lcf_central(self, fig3_requests):
        variant = LCFCentralVariant(4, coverage=RRCoverage.NONE)
        plain = LCFCentral(4)
        for _ in range(10):
            assert (
                variant.schedule(fig3_requests) == plain.schedule(fig3_requests)
            ).all()

    def test_diagonal_matches_lcf_central_rr(self, fig3_requests):
        variant = LCFCentralVariant(4, coverage=RRCoverage.DIAGONAL)
        rr = LCFCentralRR(4)
        for _ in range(10):
            assert (
                variant.schedule(fig3_requests) == rr.schedule(fig3_requests)
            ).all()


class TestEdgeCases:
    def test_single_port_switch(self):
        scheduler = LCFCentralRR(1)
        assert scheduler.schedule(np.array([[True]])).tolist() == [0]
        assert scheduler.schedule(np.array([[False]])).tolist() == [NO_GRANT]

    def test_empty_matrix_grants_nothing(self):
        scheduler = LCFCentralRR(5)
        assert (scheduler.schedule(np.zeros((5, 5), dtype=bool)) == NO_GRANT).all()

    def test_full_matrix_gives_perfect_matching(self):
        scheduler = LCFCentralRR(6)
        schedule = scheduler.schedule(np.ones((6, 6), dtype=bool))
        assert matching_size(schedule) == 6

    def test_permutation_matrix_granted_exactly(self):
        perm = np.zeros((4, 4), dtype=bool)
        order = [2, 0, 3, 1]
        for i, j in enumerate(order):
            perm[i, j] = True
        schedule = LCFCentralRR(4).schedule(perm)
        assert schedule.tolist() == order
