"""Multicast scheduling: cells, queues, least-residue-first policy."""

import numpy as np
import pytest

from repro.core.multicast import MulticastCell, MulticastQueue, MulticastScheduler
from repro.types import NO_GRANT


def cell(src, fanout, t=0):
    return MulticastCell(src, set(fanout), t)


class TestCell:
    def test_residue_shrinks_with_delivery(self):
        c = cell(0, {1, 2, 3})
        c.delivered.add(2)
        assert c.residue == {1, 3}
        assert not c.complete

    def test_complete_when_fanout_served(self):
        c = cell(0, {1})
        c.delivered.add(1)
        assert c.complete


class TestQueue:
    def test_fifo_head(self):
        q = MulticastQueue()
        a, b = cell(0, {1}), cell(0, {2})
        q.push(a)
        q.push(b)
        assert q.head() is a

    def test_capacity_drops(self):
        q = MulticastQueue(capacity=1)
        assert q.push(cell(0, {1}))
        assert not q.push(cell(0, {2}))
        assert q.dropped == 1

    def test_pop_only_when_complete(self):
        q = MulticastQueue()
        c = cell(0, {1, 2})
        q.push(c)
        assert q.pop_if_complete() is None
        c.delivered.update({1, 2})
        assert q.pop_if_complete() is c
        assert len(q) == 0


class TestScheduler:
    def test_single_contender_wins_its_outputs(self):
        scheduler = MulticastScheduler(4)
        heads = [cell(0, {1, 3}), None, None, None]
        assignment = scheduler.schedule(heads)
        assert assignment[1] == 0 and assignment[3] == 0
        assert assignment[0] == NO_GRANT

    def test_one_input_can_feed_many_outputs(self):
        scheduler = MulticastScheduler(4)
        heads = [cell(0, {0, 1, 2, 3}), None, None, None]
        assignment = scheduler.schedule(heads)
        assert (assignment == 0).all()

    def test_least_residue_wins_contention(self):
        scheduler = MulticastScheduler(4)
        heads = [cell(0, {2}), cell(1, {2, 3}), None, None]
        assignment = scheduler.schedule(heads)
        assert assignment[2] == 0  # residue 1 beats residue 2
        assert assignment[3] == 1  # uncontested

    def test_residue_not_original_fanout_counts(self):
        scheduler = MulticastScheduler(4)
        big = cell(0, {1, 2, 3})
        big.delivered.update({1, 3})  # residue is now just {2}
        small = cell(1, {2, 3})
        assignment = scheduler.schedule([big, small, None, None])
        assert assignment[2] == 0

    def test_ties_rotate(self):
        scheduler = MulticastScheduler(2)
        winners = set()
        for _ in range(3):
            heads = [cell(0, {0}), cell(1, {0})]
            winners.add(int(scheduler.schedule(heads)[0]))
        assert winners == {0, 1}

    def test_random_policy_is_seeded(self):
        a = MulticastScheduler(4, policy="random", seed=3)
        b = MulticastScheduler(4, policy="random", seed=3)
        heads = [cell(0, {1}), cell(1, {1}), cell(2, {1}), None]
        for _ in range(5):
            assert (a.schedule(heads) == b.schedule(heads)).all()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MulticastScheduler(4, policy="nope")

    def test_wrong_head_count_rejected(self):
        with pytest.raises(ValueError):
            MulticastScheduler(4).schedule([None, None])
