"""Distributed LCF scheduler: Section 5 semantics and the Figure 9 example."""

import numpy as np
from hypothesis import given, settings

from repro.core.lcf_dist import LCFDistributed, LCFDistributedRR
from repro.matching.verify import is_maximal, is_valid_schedule, matching_size
from repro.types import NO_GRANT

from tests.conftest import request_matrices


def fig9_requests() -> np.ndarray:
    """Reconstruction of the Figure 9 example (consistent with all the
    facts stated in the text: NRQ = [1, 3, 3, 2]; T2 receives requests
    from I0, I1, I2 and grants I0; I3 receives grants from T1 and T3 and
    accepts T1)."""
    requests = np.zeros((4, 4), dtype=bool)
    requests[0, 2] = True  # I0 -> T2
    requests[1, [0, 2, 3]] = True  # I1 -> T0, T2, T3
    requests[2, [0, 2, 3]] = True  # I2 -> T0, T2, T3
    requests[3, [1, 3]] = True  # I3 -> T1, T3
    return requests


class TestFigure9:
    def test_iteration0_grants_and_accepts(self):
        scheduler = LCFDistributed(4, iterations=1)
        scheduler.record_trace = True
        schedule = scheduler.schedule(fig9_requests())
        trace = scheduler.last_trace[0]
        assert trace.nrq.tolist() == [1, 3, 3, 2]
        # T2 grants I0 (least choice); T1 and T3 both grant I3.
        assert trace.grants[0, 2]
        assert trace.grants[3, 1] and trace.grants[3, 3]
        # I3 accepts T1 (ngt 1 < ngt 3).
        assert schedule[3] == 1
        assert schedule[0] == 2

    def test_two_iterations_complete_the_matching(self):
        scheduler = LCFDistributed(4, iterations=2)
        schedule = scheduler.schedule(fig9_requests())
        # Iteration 1 matches the leftover pair (I2, T3).
        assert matching_size(schedule) == 4
        assert schedule[2] == 3

    def test_iteration1_only_considers_unmatched(self):
        scheduler = LCFDistributed(4, iterations=2)
        scheduler.record_trace = True
        scheduler.schedule(fig9_requests())
        second = scheduler.last_trace[1]
        # Only I2 is still requesting, and only T3 is free.
        assert second.requests.sum() == 1
        assert second.requests[2, 3]
        assert second.nrq[2] == 1


class TestGrantPriorities:
    def test_grant_goes_to_fewest_requests(self):
        requests = np.zeros((3, 3), dtype=bool)
        requests[0, 0] = True  # I0: one choice
        requests[1, 0] = requests[1, 1] = requests[1, 2] = True
        schedule = LCFDistributed(3, iterations=1).schedule(requests)
        assert schedule[0] == 0  # least choice wins the grant

    def test_accept_goes_to_fewest_received(self):
        # I0 requests T0 (contested by I1 too -> ngt 2) and T1 (ngt 1).
        # Both targets grant I0 (it has the lowest nrq at both); I0 must
        # accept T1, the less-contested target.
        requests = np.zeros((3, 3), dtype=bool)
        requests[0, 0] = requests[0, 1] = True
        requests[1, 0] = requests[1, 2] = True
        schedule = LCFDistributed(3, iterations=1).schedule(requests)
        assert schedule[0] == 1

    def test_tie_break_uses_rotating_pointer(self):
        # Two equal-priority requesters for one output: the winner must
        # change across scheduling cycles as the pointer moves.
        requests = np.zeros((2, 2), dtype=bool)
        requests[0, 0] = requests[1, 0] = True
        scheduler = LCFDistributed(2, iterations=1)
        winners = set()
        for _ in range(4):
            schedule = scheduler.schedule(requests)
            winners.add(int(np.flatnonzero(schedule != NO_GRANT)[0]))
        assert winners == {0, 1}


class TestConvergence:
    @given(request_matrices(min_n=2, max_n=6))
    @settings(max_examples=60, deadline=None)
    def test_n_iterations_always_maximal(self, requests):
        n = requests.shape[0]
        scheduler = LCFDistributed(n, iterations=n)
        assert is_maximal(requests, scheduler.schedule(requests))

    @given(request_matrices(max_n=6))
    @settings(max_examples=60, deadline=None)
    def test_schedule_always_valid(self, requests):
        scheduler = LCFDistributed(requests.shape[0])
        assert is_valid_schedule(requests, scheduler.schedule(requests))

    def test_early_exit_on_convergence(self):
        # A permutation matrix matches fully in one iteration; further
        # iterations must be no-ops (verified via the trace length).
        scheduler = LCFDistributed(4, iterations=4)
        scheduler.record_trace = True
        scheduler.schedule(np.eye(4, dtype=bool))
        assert len(scheduler.last_trace) <= 2

    def test_more_iterations_never_shrink_matching(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            requests = rng.random((6, 6)) < 0.4
            sizes = [
                matching_size(LCFDistributed(6, iterations=k).schedule(requests))
                for k in (1, 2, 4, 6)
            ]
            assert sizes == sorted(sizes)


class TestDistributedRR:
    def test_rr_position_matched_before_iterations(self):
        requests = np.ones((3, 3), dtype=bool)
        scheduler = LCFDistributedRR(3, iterations=1)
        scheduler.set_rr_position(2, 1)
        schedule = scheduler.schedule(requests)
        assert schedule[2] == 1

    def test_rr_position_advances_row_first(self):
        scheduler = LCFDistributedRR(3)
        empty = np.zeros((3, 3), dtype=bool)
        positions = []
        for _ in range(4):
            positions.append(scheduler.rr_position)
            scheduler.schedule(empty)
        assert positions == [(0, 0), (1, 0), (2, 0), (0, 1)]

    def test_rr_skipped_when_position_has_no_request(self):
        requests = np.zeros((3, 3), dtype=bool)
        requests[1, 2] = True
        scheduler = LCFDistributedRR(3, iterations=2)  # RR at (0, 0): empty
        schedule = scheduler.schedule(requests)
        assert schedule[1] == 2

    def test_reset_restores_rr_position(self):
        scheduler = LCFDistributedRR(4)
        scheduler.schedule(np.zeros((4, 4), dtype=bool))
        scheduler.reset()
        assert scheduler.rr_position == (0, 0)

    @given(request_matrices(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_rr_schedule_always_valid(self, requests):
        scheduler = LCFDistributedRR(requests.shape[0])
        assert is_valid_schedule(requests, scheduler.schedule(requests))
