"""MetricsSnapshot rendering, SnapshotExporter, and the scrape endpoint."""

from __future__ import annotations

import json
import math
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.serve import (
    TEXT_CONTENT_TYPE,
    MetricsSnapshot,
    ScrapeEndpoint,
    SnapshotExporter,
    effective_exporter,
    render_json,
    render_openmetrics,
    sanitize_metric_name,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("forwarded").inc(7)
    registry.gauge("queue_depth").set(3.5)
    hist = registry.histogram("delay", (1, 2, 4))
    for value in (1, 1, 3, 9):
        hist.observe(value)
    return registry


class TestSanitize:
    def test_passthrough_and_cleaning(self):
        assert sanitize_metric_name("forwarded_total") == "forwarded_total"
        assert sanitize_metric_name("rate in/out") == "rate_in_out"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("") == "_"


class TestOpenMetricsRendering:
    def test_scalars_and_type_lines(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE forwarded counter\nforwarded 7" in text
        assert "# TYPE queue_depth gauge\nqueue_depth 3.5" in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_openmetrics(populated_registry())
        lines = text.splitlines()
        bucket_lines = [l for l in lines if l.startswith("delay_bucket")]
        # Raw counts 2/0/1 + overflow 1 -> cumulative 2/2/3, +Inf = 4.
        assert bucket_lines == [
            'delay_bucket{le="1"} 2',
            'delay_bucket{le="2"} 2',
            'delay_bucket{le="4"} 3',
            'delay_bucket{le="+Inf"} 4',
        ]
        assert "delay_sum 14" in text
        assert "delay_count 4" in text

    def test_slot_stamp(self):
        text = render_openmetrics(populated_registry(), slot=1234)
        assert "repro_slot 1234" in text
        assert "repro_slot" not in render_openmetrics(populated_registry())

    def test_nan_gauge_renders_as_nan_token(self):
        registry = MetricsRegistry()
        registry.gauge("untouched")  # gauges start at NaN
        text = render_openmetrics(registry)
        assert "untouched NaN" in text

    def test_collectors_run_at_capture(self):
        registry = populated_registry()
        registry.add_collector(
            "derived", lambda: registry.gauge("derived").set(42.0)
        )
        snapshot = MetricsSnapshot.capture(registry)
        assert snapshot.instruments["derived"] == ("gauge", 42.0)

    def test_passes_the_conformance_tool(self):
        import importlib.util
        from pathlib import Path

        tool_path = (
            Path(__file__).resolve().parents[2]
            / "tools"
            / "check_metrics_snapshot.py"
        )
        spec = importlib.util.spec_from_file_location("cms", tool_path)
        tool = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(tool)
        registry = populated_registry()
        text = render_openmetrics(registry, slot=10)
        assert tool.validate_openmetrics(text, registry.names()) == []


class TestJsonRendering:
    def test_round_trips_and_masks_non_finite(self):
        registry = populated_registry()
        registry.gauge("nan_gauge").set(math.nan)
        payload = json.loads(render_json(registry, slot=5))
        assert payload["slot"] == 5
        assert payload["metrics"]["forwarded"] == {"kind": "counter", "value": 7}
        assert payload["metrics"]["nan_gauge"]["value"] is None
        delay = payload["metrics"]["delay"]
        assert delay["kind"] == "histogram"
        assert delay["counts"] == [2, 0, 1]
        assert delay["overflow"] == 1
        assert delay["count"] == 4


class TestSnapshotExporter:
    def test_periodic_ticks(self, tmp_path):
        path = tmp_path / "snap.prom"
        exporter = SnapshotExporter(populated_registry(), path, every=100)
        assert not exporter.tick(50)
        assert exporter.tick(99)  # slot 99 completes the 100th slot
        assert not exporter.tick(150)
        assert exporter.tick(250)  # missed periods collapse to one write
        assert exporter.writes == 2
        assert path.read_text().endswith("# EOF\n")
        assert not list(tmp_path.glob("*.tmp.*")), "temp file leaked"

    def test_final_write_and_json_format(self, tmp_path):
        path = tmp_path / "snap.json"
        exporter = SnapshotExporter(populated_registry(), path, fmt="json")
        exporter.write(7)
        assert json.loads(path.read_text())["slot"] == 7

    def test_validation(self, tmp_path):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            SnapshotExporter(registry, tmp_path / "x", every=0)
        with pytest.raises(ValueError):
            SnapshotExporter(registry, tmp_path / "x", fmt="xml")

    def test_effective_exporter_contract(self, tmp_path):
        assert effective_exporter(None) is None
        disabled = SnapshotExporter(
            MetricsRegistry(), tmp_path / "x", enabled=False
        )
        assert effective_exporter(disabled) is None
        enabled = SnapshotExporter(MetricsRegistry(), tmp_path / "x")
        assert effective_exporter(enabled) is enabled


class TestRunSimulationIntegration:
    def test_exporter_attaches_its_registry_and_writes(self, tmp_path):
        from repro.sim.config import SimConfig
        from repro.sim.simulator import run_simulation

        path = tmp_path / "run.prom"
        registry = MetricsRegistry()
        exporter = SnapshotExporter(registry, path, every=64)
        result = run_simulation(
            SimConfig(n_ports=4, warmup_slots=0, measure_slots=200),
            "lcf_dist",
            0.8,
            exporter=exporter,
        )
        assert result.forwarded > 0
        assert exporter.writes >= 2  # periodic ticks plus the final dump
        text = path.read_text()
        assert f"repro_slot 199" in text  # final snapshot stamped at the end
        assert "forwarded" in text and "delay_p50" in text

    def test_disabled_exporter_changes_nothing(self, tmp_path):
        from repro.sim.config import SimConfig
        from repro.sim.simulator import run_simulation

        config = SimConfig(n_ports=4, warmup_slots=0, measure_slots=150)
        plain = run_simulation(config, "lcf_central", 0.9)
        path = tmp_path / "never.prom"
        disabled = SnapshotExporter(MetricsRegistry(), path, enabled=False)
        gated = run_simulation(config, "lcf_central", 0.9, exporter=disabled)
        assert gated.mean_latency == plain.mean_latency
        assert gated.forwarded == plain.forwarded
        assert disabled.writes == 0 and not path.exists()


class TestScrapeEndpoint:
    def test_scrape_text_and_json(self):
        registry = populated_registry()
        with ScrapeEndpoint(registry) as endpoint:
            endpoint.current_slot = 42
            with urllib.request.urlopen(endpoint.url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == TEXT_CONTENT_TYPE
                body = response.read().decode()
            assert "repro_slot 42" in body and "forwarded 7" in body

            json_url = endpoint.url.replace("/metrics", "/metrics.json")
            with urllib.request.urlopen(json_url, timeout=5) as response:
                payload = json.loads(response.read())
            assert payload["metrics"]["forwarded"]["value"] == 7
            assert endpoint.scrapes == 2

    def test_scrape_sees_live_updates(self):
        registry = MetricsRegistry()
        registry.counter("ticks").inc()
        with ScrapeEndpoint(registry) as endpoint:
            first = urllib.request.urlopen(endpoint.url, timeout=5).read().decode()
            registry.counter("ticks").inc(9)
            second = urllib.request.urlopen(endpoint.url, timeout=5).read().decode()
        assert "ticks 1" in first and "ticks 10" in second

    def test_unknown_path_is_404(self):
        with ScrapeEndpoint(MetricsRegistry()) as endpoint:
            url = endpoint.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404

    def test_port_requires_start(self):
        endpoint = ScrapeEndpoint(MetricsRegistry())
        with pytest.raises(RuntimeError):
            endpoint.port


class TestScrapeEdgeCases:
    """HTTP serving under awkward-but-legal conditions."""

    def test_empty_registry_scrapes_cleanly(self):
        # A scrape before any instrument exists must still be a valid
        # OpenMetrics document, not a 500 or an empty body.
        with ScrapeEndpoint(MetricsRegistry()) as endpoint:
            with urllib.request.urlopen(endpoint.url, timeout=5) as response:
                assert response.status == 200
                body = response.read().decode()
            assert body == "# EOF\n"
            json_url = endpoint.url.replace("/metrics", "/metrics.json")
            with urllib.request.urlopen(json_url, timeout=5) as response:
                payload = json.loads(response.read())
        assert payload == {"slot": None, "metrics": {}}

    def test_concurrent_scrape_during_exporter_writes(self, tmp_path):
        # A scraper polling the endpoint while a SnapshotExporter is
        # rewriting its file (and the registry is being mutated) must
        # only ever see well-formed documents — on the wire AND on
        # disk (the atomic_write_text contract).
        import threading

        registry = populated_registry()
        exporter = SnapshotExporter(registry, tmp_path / "snap.json", fmt="json")
        stop = threading.Event()

        def churn() -> None:
            slot = 0
            while not stop.is_set():
                registry.counter("forwarded").inc()
                exporter.write(slot)
                slot += 1

        writer = threading.Thread(target=churn, daemon=True)
        with ScrapeEndpoint(registry) as endpoint:
            writer.start()
            try:
                json_url = endpoint.url.replace("/metrics", "/metrics.json")
                for _ in range(25):
                    with urllib.request.urlopen(endpoint.url, timeout=5) as response:
                        text = response.read().decode()
                    assert text.endswith("# EOF\n")
                    with urllib.request.urlopen(json_url, timeout=5) as response:
                        scraped = json.loads(response.read())
                    assert scraped["metrics"]["forwarded"]["value"] >= 7
                    on_disk = json.loads((tmp_path / "snap.json").read_text())
                    assert on_disk["metrics"]["forwarded"]["kind"] == "counter"
            finally:
                stop.set()
                writer.join(timeout=5)
        assert exporter.writes > 0
        assert not list(tmp_path.glob("*.tmp.*")), "no torn temp files"

    def test_scrape_during_simulation_exporter(self, tmp_path):
        # End to end: a live endpoint scraped while run_simulation
        # drives the same registry through a SnapshotExporter.
        from repro.sim.config import SimConfig
        from repro.sim.simulator import run_simulation

        registry = MetricsRegistry()
        exporter = SnapshotExporter(registry, tmp_path / "snap.txt", every=64)
        with ScrapeEndpoint(registry) as endpoint:
            result = run_simulation(
                SimConfig(n_ports=4, warmup_slots=10, measure_slots=200, seed=51),
                "lcf_central_rr",
                0.8,
                metrics=registry,
                exporter=exporter,
            )
            body = urllib.request.urlopen(endpoint.url, timeout=5).read().decode()
        assert result.forwarded > 0
        assert "# EOF" in body
        assert exporter.writes > 0
