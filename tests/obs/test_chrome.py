"""Chrome trace-event export."""

import json

from repro.obs import events as ev
from repro.obs.chrome import (
    PID_SCHEDULER,
    PID_SWITCH,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation


def test_forward_becomes_complete_span():
    events = [ev.forward(slot=9, input=2, output=5, latency=4)]
    doc = to_chrome_trace(events, slot_us=1000.0)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    span = spans[0]
    # Span covers generation slot 6 through departure slot 9.
    assert span["ts"] == 6000.0
    assert span["dur"] == 4000.0
    assert span["tid"] == 2
    assert span["pid"] == PID_SWITCH


def test_instants_and_counters():
    events = [
        ev.drop(1, 0, 3),
        ev.rr_override(2, 1, 1),
        ev.slot_summary(3, 4, 9),
    ]
    doc = to_chrome_trace(events)
    phases = sorted(e["ph"] for e in doc["traceEvents"] if e["ph"] != "M")
    assert phases == ["C", "I", "I"]
    counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
    assert counter["args"] == {"matching_size": 4, "outstanding_requests": 9}


def test_iterations_subdivide_the_slot():
    events = [ev.iteration(5, index, 3, 2) for index in range(3)]
    doc = to_chrome_trace(events, slot_us=800.0)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    starts = [s["ts"] for s in spans]
    assert starts == sorted(starts)
    assert all(s["pid"] == PID_SCHEDULER for s in spans)
    assert all(s["ts"] + s["dur"] <= 5 * 800.0 + 800.0 for s in spans)


def test_metadata_names_both_processes():
    doc = to_chrome_trace([])
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {e["pid"] for e in meta} == {PID_SWITCH, PID_SCHEDULER}


def test_untranslated_events_are_skipped():
    doc = to_chrome_trace([ev.arrival(0, 1, 2), ev.requests(0, [1, 1])])
    assert all(e["ph"] == "M" for e in doc["traceEvents"])


def test_write_chrome_trace_from_real_run(tmp_path):
    config = SimConfig(n_ports=4, warmup_slots=0, measure_slots=80, seed=5)
    tracer = RingTracer()
    run_simulation(config, "lcf_central_rr", load=0.9, tracer=tracer)
    path = tmp_path / "trace.json"
    count = write_chrome_trace(tracer.events, path)
    assert count > 2
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert len(doc["traceEvents"]) == count
    # Perfetto requires ph/ts fields on every non-metadata record.
    for record in doc["traceEvents"]:
        assert "ph" in record
        assert record["ph"] == "M" or "ts" in record
