"""Chrome trace-event export."""

import json

from repro.obs import events as ev
from repro.obs.chrome import (
    PID_SCHEDULER,
    PID_SWITCH,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation


def test_forward_becomes_complete_span():
    events = [ev.forward(slot=9, input=2, output=5, latency=4)]
    doc = to_chrome_trace(events, slot_us=1000.0)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    span = spans[0]
    # Span covers generation slot 6 through departure slot 9.
    assert span["ts"] == 6000.0
    assert span["dur"] == 4000.0
    assert span["tid"] == 2
    assert span["pid"] == PID_SWITCH


def test_instants_and_counters():
    events = [
        ev.drop(1, 0, 3),
        ev.rr_override(2, 1, 1),
        ev.slot_summary(3, 4, 9),
    ]
    doc = to_chrome_trace(events)
    phases = sorted(e["ph"] for e in doc["traceEvents"] if e["ph"] != "M")
    assert phases == ["C", "I", "I"]
    counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
    assert counter["args"] == {"matching_size": 4, "outstanding_requests": 9}


def test_iterations_subdivide_the_slot():
    events = [ev.iteration(5, index, 3, 2) for index in range(3)]
    doc = to_chrome_trace(events, slot_us=800.0)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    starts = [s["ts"] for s in spans]
    assert starts == sorted(starts)
    assert all(s["pid"] == PID_SCHEDULER for s in spans)
    assert all(s["ts"] + s["dur"] <= 5 * 800.0 + 800.0 for s in spans)


def test_voq_occupancy_becomes_per_input_counter_tracks():
    events = [ev.slot_summary(3, 2, 5, voq=[4, 0, 7, 1])]
    doc = to_chrome_trace(events, slot_us=1000.0)
    tracks = [
        e
        for e in doc["traceEvents"]
        if e["ph"] == "C" and e["name"].startswith("voq in")
    ]
    assert len(tracks) == 4
    assert [t["args"]["queued"] for t in tracks] == [4, 0, 7, 1]
    assert all(t["pid"] == PID_SWITCH for t in tracks)
    assert {t["tid"] for t in tracks} == {0, 1, 2, 3}
    assert all(t["ts"] == 3000.0 for t in tracks)


def test_slot_summary_without_voq_has_no_voq_tracks():
    doc = to_chrome_trace([ev.slot_summary(3, 4, 9)])
    assert not any(
        e["name"].startswith("voq in")
        for e in doc["traceEvents"]
        if e["ph"] == "C"
    )


def test_fault_and_recovery_become_instant_markers():
    events = [
        ev.fault(10, 2, "input"),
        ev.recovery(25, 2, "input", backlog_slots=15),
    ]
    doc = to_chrome_trace(events, slot_us=1000.0)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "I"]
    assert len(instants) == 2
    down, up = instants
    assert "down" in down["name"] and "up" in up["name"]
    assert down["cat"] == up["cat"] == "fault"
    assert up["args"]["backlog_slots"] == 15
    assert down["ts"] == 10000.0 and up["ts"] == 25000.0


def test_metadata_names_both_processes():
    doc = to_chrome_trace([])
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert {e["pid"] for e in meta} == {PID_SWITCH, PID_SCHEDULER}


def test_untranslated_events_are_skipped():
    doc = to_chrome_trace([ev.arrival(0, 1, 2), ev.requests(0, [1, 1])])
    assert all(e["ph"] == "M" for e in doc["traceEvents"])


def test_write_chrome_trace_from_real_run(tmp_path):
    config = SimConfig(n_ports=4, warmup_slots=0, measure_slots=80, seed=5)
    tracer = RingTracer()
    run_simulation(config, "lcf_central_rr", load=0.9, tracer=tracer)
    path = tmp_path / "trace.json"
    count = write_chrome_trace(tracer.events, path)
    assert count > 2
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert len(doc["traceEvents"]) == count
    # Perfetto requires ph/ts fields on every non-metadata record.
    for record in doc["traceEvents"]:
        assert "ph" in record
        assert record["ph"] == "M" or "ts" in record
