"""``lcf-trace`` CLI end-to-end."""

import json
import sys
from pathlib import Path

import pytest

from repro.obs import cli

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

from check_trace_schema import check_trace  # noqa: E402


def run_cli(capsys, *argv):
    code = cli.main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_traced_run_writes_schema_valid_jsonl(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code, stdout, _ = run_cli(
        capsys,
        "--scheduler", "lcf_central_rr", "--ports", "4", "--slots", "120",
        "--seed", "9", "--out", str(out),
    )
    assert code == 0
    checked, errors = check_trace(out)
    assert errors == []
    assert checked > 120  # at least one summary per slot plus pipeline events
    assert "RR-override rate" in stdout
    assert "mean matching size" in stdout
    assert "mean maximum matching" in stdout


def test_chrome_export_is_loadable_json(tmp_path, capsys):
    chrome = tmp_path / "trace.json"
    code, stdout, _ = run_cli(
        capsys,
        "--scheduler", "lcf_dist_rr", "--ports", "4", "--slots", "80",
        "--chrome", str(chrome),
    )
    assert code == 0
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]
    assert f"wrote {chrome}" in stdout


def test_in_memory_run_without_output_files(capsys):
    code, stdout, _ = run_cli(
        capsys, "--scheduler", "lcf_central", "--ports", "4", "--slots", "60"
    )
    assert code == 0
    assert "tie-break chain depth" in stdout


def test_weight_scheduler_skips_probe(capsys):
    code, stdout, _ = run_cli(
        capsys, "--scheduler", "lqf", "--ports", "4", "--slots", "60"
    )
    assert code == 0
    assert "mean maximum matching" not in stdout


def test_no_max_matching_flag(capsys):
    code, stdout, _ = run_cli(
        capsys,
        "--scheduler", "lcf_central", "--ports", "4", "--slots", "60",
        "--no-max-matching",
    )
    assert code == 0
    assert "mean maximum matching" not in stdout


def test_quiet_suppresses_summary(tmp_path, capsys):
    out = tmp_path / "t.jsonl"
    code, stdout, _ = run_cli(
        capsys,
        "--scheduler", "pim", "--ports", "4", "--slots", "40",
        "--out", str(out), "--quiet",
    )
    assert code == 0
    assert stdout == ""
    assert out.exists()


@pytest.mark.parametrize("name", ["fifo", "outbuf"])
def test_special_switches_rejected(name, capsys):
    code, _, stderr = run_cli(capsys, "--scheduler", name)
    assert code == 2
    assert "no VOQ pipeline" in stderr


def test_bad_load_rejected(capsys):
    code, _, stderr = run_cli(capsys, "--load", "1.5")
    assert code == 2
    assert "outside" in stderr
