"""Paper-check analytics: message accounting, fairness, dashboard."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.hw.comm import distributed_bits, distributed_messages
from repro.obs import events as ev
from repro.obs.analytics import (
    DashboardRow,
    FairnessProbe,
    MessageAccountingProbe,
    dashboard_ascii,
    run_matching_dashboard,
    write_dashboard_csv,
    write_dashboard_plot,
)
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation


def traced_run(scheduler: str, n: int = 8, load: float = 0.8, slots: int = 300,
               **kwargs):
    tracer = RingTracer(capacity=1 << 21)
    config = SimConfig(n_ports=n, warmup_slots=0, measure_slots=slots)
    result = run_simulation(config, scheduler, load, tracer=tracer, **kwargs)
    return tracer.events, result, config


class TestMessageAccountingProbe:
    def test_hand_built_events_match_closed_form(self):
        """Two slots, 3 and 1 iterations: empirical == analytic exactly."""
        n = 4
        probe = MessageAccountingProbe(n, configured_iterations=4)
        events = [
            ev.iteration(0, k, 2, 1, requests=5) for k in range(3)
        ] + [ev.iteration(1, 0, 4, 4, requests=8)]
        report = probe.consume(events).report("lcf_dist")
        assert report.slots == 2
        assert report.iterations == 4
        assert report.analytic_bits == distributed_bits(n, 3) + distributed_bits(n, 1)
        assert report.empirical_bits == report.analytic_bits
        assert report.error == 0.0
        assert report.configured_bits == 2 * distributed_bits(n, 4)
        fields = distributed_messages(n)
        expected_live = (
            (3 * 5 + 8) * fields["request"].bits
            + (3 * 2 + 4) * fields["grant"].bits
            + (3 * 1 + 4) * fields["accept"].bits
        )
        assert report.live_bits == expected_live
        assert 0.0 < report.live_utilization < 1.0

    @pytest.mark.parametrize("scheduler", ["lcf_dist", "lcf_dist_rr"])
    def test_error_under_one_percent_on_fault_free_runs(self, scheduler):
        """The ISSUE acceptance criterion: empirical vs distributed_bits
        error < 1% for both distributed schedulers, fault-free."""
        events, _, config = traced_run(scheduler)
        probe = MessageAccountingProbe(
            config.n_ports, configured_iterations=config.iterations
        )
        report = probe.consume(events).report(scheduler)
        assert report.slots > 0 and report.iterations > 0
        assert report.error < 0.01
        # Early convergence: observed iterations <= configured, so the
        # fixed-i model must overcharge (or match exactly).
        assert report.mean_iterations <= config.iterations
        assert 0.0 <= report.convergence_savings < 1.0
        summary = report.summary()
        assert scheduler in summary and "error" in summary

    def test_ignores_non_iteration_events(self):
        probe = MessageAccountingProbe(4)
        probe.consume([ev.arrival(0, 1, 2), ev.forward(0, 1, 2, 3)])
        assert probe.slots == 0 and probe.iterations == 0
        report = probe.report()
        assert math.isnan(report.error)

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageAccountingProbe(4, configured_iterations=0)


class TestFairnessProbe:
    def test_rr_bound_holds_at_saturation(self):
        """At load 1.0 every pair's service rate must clear the paper's
        b/n² floor, and the overlay's overrides must be visible."""
        events, result, config = traced_run(
            "lcf_dist_rr", n=8, load=1.0, slots=1600, collect_service=True
        )
        probe = FairnessProbe(8).consume(events)
        report = probe.report(
            result.service_counts, config.measure_slots, scheduler="lcf_dist_rr"
        )
        assert probe.overrides > 0
        assert report.bound_holds, report.starved_pairs
        assert report.min_rate >= report.bound * 0.5
        assert report.jain > 0.9
        assert "holds" in report.summary()

    def test_starvation_is_reported(self):
        """A service matrix with one starved pair fails the bound."""
        probe = FairnessProbe(4)
        counts = np.full((4, 4), 100, dtype=np.int64)
        counts[2, 3] = 0
        report = probe.report(counts, slots=1600)
        assert not report.bound_holds
        assert (2, 3) in report.starved_pairs
        assert "VIOLATED" in report.summary()

    def test_demand_mask_excuses_idle_pairs(self):
        probe = FairnessProbe(4)
        counts = np.full((4, 4), 100, dtype=np.int64)
        counts[2, 3] = 0
        demanded = np.ones((4, 4), dtype=bool)
        demanded[2, 3] = False  # the pair never had traffic
        report = probe.report(counts, slots=1600, demanded=demanded)
        assert report.bound_holds

    def test_validation(self):
        with pytest.raises(ValueError):
            FairnessProbe(4, b=0)
        probe = FairnessProbe(4)
        with pytest.raises(ValueError):
            probe.report(np.zeros((3, 3)), slots=10)
        with pytest.raises(ValueError):
            probe.report(np.zeros((4, 4)), slots=0)


class TestDashboard:
    @pytest.fixture(scope="class")
    def small_grid(self, tmp_path_factory):
        config = SimConfig(n_ports=4, warmup_slots=50, measure_slots=300)
        cache = tmp_path_factory.mktemp("sweep-cache")
        rows, report = run_matching_dashboard(
            config,
            ("lcf_central", "lcf_dist"),
            (0.6, 0.9),
            cache=str(cache),
            probe_slots=150,
        )
        return rows, report, cache, config

    def test_grid_shape_and_efficiency_bounds(self, small_grid):
        rows, report, _, _ = small_grid
        assert len(rows) == 4
        assert [(r.scheduler, r.load) for r in rows] == [
            ("lcf_central", 0.6), ("lcf_central", 0.9),
            ("lcf_dist", 0.6), ("lcf_dist", 0.9),
        ]
        for row in rows:
            assert 0.5 < row.efficiency <= 1.0
            assert row.mean_matching <= row.mean_maximum
            assert math.isfinite(row.mean_latency)
        assert report is not None and report.total_points == 4

    def test_sweep_cache_is_reused(self, small_grid):
        rows, _, cache, config = small_grid
        again, report = run_matching_dashboard(
            config,
            ("lcf_central", "lcf_dist"),
            (0.6, 0.9),
            cache=str(cache),
            probe_slots=150,
        )
        assert report.cache_hits == 4
        assert [r.row() for r in again] == [r.row() for r in rows]

    def test_csv_and_ascii_renderings(self, small_grid, tmp_path):
        rows, _, _, _ = small_grid
        path = write_dashboard_csv(rows, tmp_path / "dash.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("scheduler,load,efficiency")
        assert len(lines) == 5
        art = dashboard_ascii(rows)
        assert "Matching efficiency" in art
        assert "lcf_central" in art and "lcf_dist" in art

    def test_plot_is_gated_on_matplotlib(self, small_grid, tmp_path):
        rows, _, _, _ = small_grid
        written = write_dashboard_plot(rows, tmp_path / "dash.png")
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            assert written is None
        else:  # pragma: no cover - environment-dependent
            assert written is not None and written.exists()

    def test_special_switch_models_get_nan_cells(self):
        config = SimConfig(n_ports=4, warmup_slots=20, measure_slots=100)
        rows, _ = run_matching_dashboard(
            config, ("outbuf",), (0.6,), probe_slots=50
        )
        assert math.isnan(rows[0].efficiency)
        assert math.isfinite(rows[0].mean_latency)


class TestReportCli:
    def test_dashboard_mode_writes_csv(self, tmp_path, capsys):
        from repro.analysis.report import main

        csv_path = tmp_path / "grid.csv"
        code = main([
            "--dashboard", "--ports", "4", "--fidelity", "smoke",
            "--loads", "0.6", "--schedulers", "lcf_central,islip",
            "--probe-slots", "80", "--cache-dir", str(tmp_path / "cache"),
            "--csv", str(csv_path),
        ])
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "2 grid cells" in out

    def test_dashboard_mode_ascii_fallback(self, tmp_path, capsys):
        from repro.analysis.report import main

        code = main([
            "--dashboard", "--ports", "4", "--fidelity", "smoke",
            "--loads", "0.6", "--schedulers", "lcf_central",
            "--probe-slots", "80", "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        assert "Matching efficiency" in capsys.readouterr().out
