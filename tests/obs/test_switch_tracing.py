"""End-to-end switch instrumentation: events and metrics from real runs."""

import pytest

from repro.obs import events as ev
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation


def traced_run(scheduler, *, slots=200, ports=4, load=0.8, seed=3):
    config = SimConfig(
        n_ports=ports, warmup_slots=0, measure_slots=slots, seed=seed
    )
    tracer = RingTracer()
    metrics = MetricsRegistry()
    result = run_simulation(
        config, scheduler, load=load, tracer=tracer, metrics=metrics
    )
    return result, tracer, metrics


class TestEventStream:
    def test_all_events_schema_valid(self):
        _, tracer, _ = traced_run("lcf_central_rr")
        assert tracer.events
        for event in tracer.events:
            assert ev.validate_event(event) == []

    def test_slots_are_nondecreasing(self):
        _, tracer, _ = traced_run("lcf_dist_rr")
        slots = [event["slot"] for event in tracer.events]
        assert slots == sorted(slots)

    def test_one_slot_summary_per_slot(self):
        _, tracer, _ = traced_run("lcf_central", slots=150)
        summaries = tracer.of_type(ev.SLOT)
        assert [e["slot"] for e in summaries] == list(range(150))

    def test_forward_events_match_forwarded_count(self):
        # warmup=0, so the measurement window covers every traced slot.
        result, tracer, _ = traced_run("lcf_central")
        assert len(tracer.of_type(ev.FORWARD)) == result.forwarded

    def test_forward_latency_consistent(self):
        _, tracer, _ = traced_run("islip")
        for event in tracer.of_type(ev.FORWARD):
            assert event["latency"] >= 1
            assert event["latency"] <= event["slot"] + 1

    def test_central_lcf_emits_per_step_decisions(self):
        _, tracer, _ = traced_run("lcf_central")
        steps = tracer.of_type(ev.SCHED_STEP)
        assert steps
        # One allocation step per output per slot.
        per_slot = {}
        for event in steps:
            per_slot.setdefault(event["slot"], []).append(event["output"])
        for outputs in per_slot.values():
            assert sorted(outputs) == [0, 1, 2, 3]

    def test_distributed_lcf_emits_iterations(self):
        _, tracer, _ = traced_run("lcf_dist")
        iterations = tracer.of_type(ev.ITERATION)
        assert iterations
        assert all(0 <= e["iteration"] < 4 for e in iterations)
        assert not tracer.of_type(ev.SCHED_STEP)

    def test_iteration_events_carry_live_request_counts(self):
        """The requests field feeds the Section 6.2 message accounting:
        positive pending-request counts that never grow across the
        iterations of one slot (grants only retire requests)."""
        _, tracer, _ = traced_run("lcf_dist", load=0.9)
        per_slot: dict[int, list[tuple[int, int]]] = {}
        for event in tracer.of_type(ev.ITERATION):
            per_slot.setdefault(event["slot"], []).append(
                (event["iteration"], event["requests"])
            )
        assert per_slot
        for rounds in per_slot.values():
            counts = [requests for _, requests in sorted(rounds)]
            assert counts[0] > 0
            assert all(b <= a for a, b in zip(counts, counts[1:]))

    @pytest.mark.parametrize("scheduler", ["lcf_central_rr", "lcf_dist_rr"])
    def test_rr_variants_emit_overrides(self, scheduler):
        _, tracer, _ = traced_run(scheduler, load=0.95)
        assert tracer.of_type(ev.RR_OVERRIDE)

    @pytest.mark.parametrize("scheduler", ["lcf_central", "lcf_dist", "islip"])
    def test_non_rr_schedulers_never_override(self, scheduler):
        _, tracer, _ = traced_run(scheduler, load=0.95)
        assert not tracer.of_type(ev.RR_OVERRIDE)


class TestMetrics:
    def test_slot_and_grant_accounting(self):
        result, _, metrics = traced_run("lcf_central_rr", slots=180)
        assert metrics.get("slots").value == 180
        # Every grant forwards exactly one packet (warmup=0).
        assert metrics.get("grants").value == metrics.get("forwarded").value
        assert metrics.get("forwarded").value == result.forwarded

    def test_matching_histogram_covers_every_slot(self):
        _, _, metrics = traced_run("pim", slots=120)
        hist = metrics.get("matching_size")
        assert hist.count == 120
        assert 0 <= hist.min and hist.max <= 4

    def test_choice_counts_recorded_for_lcf(self):
        _, _, metrics = traced_run("lcf_central")
        hist = metrics.get("choice_count")
        assert hist.count > 0
        assert hist.min >= 1  # a granted input had at least its own request

    def test_tie_depth_bounded_by_ports(self):
        _, _, metrics = traced_run("lcf_central_rr")
        hist = metrics.get("tie_break_depth")
        assert hist.count > 0
        assert 0 <= hist.min and hist.max < 4

    def test_metrics_without_tracer(self):
        config = SimConfig(n_ports=4, warmup_slots=0, measure_slots=100, seed=1)
        metrics = MetricsRegistry()
        result = run_simulation(config, "lcf_central", load=0.7, metrics=metrics)
        assert metrics.get("slots").value == 100
        assert metrics.get("forwarded").value == result.forwarded

    def test_snapshot_is_json_shaped(self):
        import json

        _, _, metrics = traced_run("lcf_dist_rr", slots=60)
        json.dumps(metrics.snapshot())  # must not raise


class TestSpecialSwitches:
    @pytest.mark.parametrize("name", ["fifo", "outbuf"])
    def test_instrumentation_ignored(self, name):
        # Dedicated switch models have no VOQ pipeline; tracer/metrics
        # are documented as ignored, not an error.
        config = SimConfig(n_ports=4, warmup_slots=0, measure_slots=50, seed=1)
        tracer = RingTracer()
        run_simulation(config, name, load=0.5, tracer=tracer)
        assert len(tracer) == 0
