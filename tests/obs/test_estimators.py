"""Online estimators: EWMA rate lazy decay and P² quantile accuracy."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.estimators import P2Quantile, RateEstimator, StreamingQuantiles


# ---------------------------------------------------------------------------
# RateEstimator
# ---------------------------------------------------------------------------


def naive_ewma(events: list[tuple[int, int, int]], n: int, alpha: float,
               horizon: int) -> np.ndarray:
    """Reference: apply the EWMA recurrence slot by slot, no laziness."""
    value = np.zeros((n, n))
    hits = np.zeros((n, n), dtype=bool)
    by_slot: dict[int, list[tuple[int, int]]] = {}
    for i, j, slot in events:
        by_slot.setdefault(slot, []).append((i, j))
    for slot in range(horizon + 1):
        hits[:] = False
        for i, j in by_slot.get(slot, []):
            hits[i, j] = True
        value = (1.0 - alpha) * value + alpha * hits
    return value


class TestRateEstimator:
    def test_converges_to_true_rate(self):
        est = RateEstimator(2, alpha=0.05)
        # Pair (0, 1) served every slot: rate must approach 1.0.
        for slot in range(400):
            est.observe(0, 1, slot)
        assert est.rate(0, 1, 399) == pytest.approx(1.0, abs=1e-6)
        # Untouched pairs stay at exactly zero.
        assert est.rate(1, 0, 399) == 0.0

    def test_half_rate_alternating(self):
        est = RateEstimator(1, alpha=0.02)
        for slot in range(0, 1000, 2):
            est.observe(0, 0, slot)
        assert est.rate(0, 0, 999) == pytest.approx(0.5, rel=0.1)

    def test_decay_during_outage_then_recovery(self):
        """The ROADMAP's 'watch a faulted switch heal' signal."""
        est = RateEstimator(1, alpha=0.05)
        for slot in range(200):
            est.observe(0, 0, slot)
        healthy = est.rate(0, 0, 199)
        faulted = est.rate(0, 0, 300)  # 100 silent slots
        assert faulted < 0.01 * healthy
        for slot in range(300, 500):
            est.observe(0, 0, slot)
        assert est.rate(0, 0, 499) == pytest.approx(healthy, rel=0.01)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 3), st.integers(0, 60)
            ),
            max_size=40,
        )
    )
    def test_lazy_decay_matches_naive_reference(self, raw_events):
        """Lazy one-power decay == slot-by-slot recurrence, any pattern.

        At most one event per (pair, slot) — the crossbar forwards at
        most one packet per pair per slot — and events are applied in
        slot order, as the switch does.
        """
        events = sorted(set(raw_events), key=lambda e: e[2])
        seen = set()
        events = [
            e for e in events
            if (e[0], e[1], e[2]) not in seen and not seen.add((e[0], e[1], e[2]))
        ]
        alpha, horizon = 0.1, 60
        est = RateEstimator(4, alpha=alpha)
        for i, j, slot in events:
            est.observe(i, j, slot)
        expected = naive_ewma(events, 4, alpha, horizon)
        np.testing.assert_allclose(est.matrix(horizon), expected, atol=1e-12)

    def test_aggregates_and_top_pairs(self):
        est = RateEstimator(3, alpha=0.1)
        for slot in range(100):
            est.observe(0, 2, slot)
            if slot % 2 == 0:
                est.observe(1, 1, slot)
        at = 99
        matrix = est.matrix(at)
        np.testing.assert_allclose(est.input_rates(at), matrix.sum(axis=1))
        np.testing.assert_allclose(est.output_rates(at), matrix.sum(axis=0))
        assert est.total_rate(at) == pytest.approx(matrix.sum())
        top = est.top_pairs(at, k=2)
        assert [(i, j) for i, j, _ in top] == [(0, 2), (1, 1)]
        assert est.events == 150

    def test_reset_and_validation(self):
        est = RateEstimator(2)
        est.observe(0, 0, 5)
        est.reset()
        assert est.rate(0, 0, 10) == 0.0 and est.events == 0
        with pytest.raises(ValueError):
            RateEstimator(0)
        with pytest.raises(ValueError):
            RateEstimator(2, alpha=0.0)
        with pytest.raises(ValueError):
            RateEstimator(2, alpha=1.5)


# ---------------------------------------------------------------------------
# P² streaming quantiles
# ---------------------------------------------------------------------------


class TestP2Quantile:
    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=5,
        ),
        st.sampled_from([0.25, 0.5, 0.9]),
    )
    def test_warmup_matches_exact_quantile(self, xs, q):
        """For <= 5 samples the estimate is the exact interpolated
        quantile of the buffer (numpy 'linear' convention)."""
        cell = P2Quantile(q)
        for x in xs:
            cell.add(x)
        assert cell.value == pytest.approx(
            float(np.quantile(xs, q)), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=6,
            max_size=200,
        ),
        st.sampled_from([0.5, 0.9, 0.99]),
    )
    def test_estimate_always_within_observed_range(self, xs, q):
        """Whatever the stream, a marker estimate cannot escape
        [min, max] of the observations."""
        cell = P2Quantile(q)
        for x in xs:
            cell.add(x)
        assert min(xs) <= cell.value <= max(xs)
        assert cell.count == len(xs)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_accuracy_on_continuous_uniform(self, q, seed):
        rng = np.random.default_rng(seed)
        xs = rng.uniform(0.0, 1.0, 3000)
        cell = P2Quantile(q)
        for x in xs:
            cell.add(float(x))
        assert cell.value == pytest.approx(float(np.quantile(xs, q)), abs=0.03)

    def test_accuracy_on_lognormal(self):
        rng = np.random.default_rng(7)
        xs = rng.lognormal(0.0, 0.5, 5000)
        for q in (0.5, 0.9):
            cell = P2Quantile(q)
            for x in xs:
                cell.add(float(x))
            exact = float(np.quantile(xs, q))
            assert cell.value == pytest.approx(exact, rel=0.05)

    def test_validation(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                P2Quantile(bad)

    def test_reset(self):
        cell = P2Quantile(0.5)
        for x in range(100):
            cell.add(float(x))
        cell.reset()
        assert cell.count == 0 and math.isnan(cell.value)


class TestStreamingQuantiles:
    def test_default_bank_and_summary(self):
        bank = StreamingQuantiles()
        rng = np.random.default_rng(3)
        for x in rng.uniform(0, 100, 2000):
            bank.add(float(x))
        values = bank.values()
        assert set(values) == {0.5, 0.9, 0.99}
        assert values[0.5] < values[0.9] < values[0.99]
        summary = bank.summary()
        assert "p50=" in summary and "p99=" in summary
        bank.reset()
        assert bank.count == 0
        with pytest.raises(ValueError):
            StreamingQuantiles(())


# ---------------------------------------------------------------------------
# The ISSUE's acceptance property: P² tracks exact percentiles on the
# registry schedulers' delay streams.
# ---------------------------------------------------------------------------


@settings(max_examples=4, deadline=None)
@given(
    st.sampled_from(["lcf_central", "lcf_central_rr", "lcf_dist", "islip"]),
    st.sampled_from([0.7, 0.9]),
    st.integers(1, 1000),
)
def test_p2_tracks_exact_delay_percentiles_on_registry_schedulers(
    scheduler, load, seed
):
    """The switch's live P² delay percentiles must stay within tolerance
    of the exact percentiles over the same forwarded-delay stream.

    ``warmup_slots=0`` so the estimator and the exact sample list cover
    the identical window. Delays are small discrete ints with long
    plateaus, where P²'s parabolic interpolation can sit a few slots
    off the exact order statistic (observed up to ~19% at p90 on
    saturated lcf_dist streams) — tolerance is three packet slots or
    25%, whichever is larger.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.config import SimConfig
    from repro.sim.simulator import build_switch
    from repro.traffic.base import make_traffic

    config = SimConfig(
        n_ports=8, warmup_slots=0, measure_slots=600, seed=seed
    )
    metrics = MetricsRegistry()
    switch = build_switch(
        config, scheduler, collect_latencies=True, seed=seed, metrics=metrics
    )
    switch.measuring = True
    pattern = make_traffic("bernoulli", 8, load, seed=seed)
    for slot in range(config.measure_slots):
        switch.step(slot, pattern.arrivals())

    samples = np.asarray(switch.latency_samples)
    if len(samples) < 100:  # pragma: no cover - ultra-low-load draw
        return
    live = switch.delay_quantiles.values()
    for q in (0.5, 0.9):
        exact = float(np.quantile(samples, q))
        tolerance = max(3.0, 0.25 * exact)
        assert abs(live[q] - exact) <= tolerance, (
            f"{scheduler} load={load} seed={seed}: p{q * 100:g} "
            f"estimate {live[q]:.2f} vs exact {exact:.2f}"
        )


# ---------------------------------------------------------------------------
# Checkpoint round-trip
# ---------------------------------------------------------------------------


class TestP2CheckpointRoundTrip:
    """A P² estimator restored from its serialised markers continues
    the stream exactly where the original left off."""

    def _drain(self, estimator: P2Quantile, xs: list[float]) -> list[float]:
        out = []
        for x in xs:
            estimator.add(x)
            out.append(estimator.value)
        return out

    @given(
        prefix=st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=60),
        suffix=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60),
        q=st.sampled_from((0.5, 0.9, 0.99)),
    )
    @settings(max_examples=40, deadline=None)
    def test_restore_from_markers_is_bit_identical(self, prefix, suffix, q):
        from repro.checkpoint import restore_state, snapshot_state

        original = P2Quantile(q)
        for x in prefix:
            original.add(x)
        snapshot = snapshot_state(original)

        restored = P2Quantile(q)
        restore_state(restored, snapshot)
        assert restored.count == original.count
        assert restored._heights == original._heights
        assert restored._positions == original._positions
        assert restored._desired == original._desired

        # Identical continuation: every post-restore estimate matches
        # the uninterrupted estimator bit for bit (NaN-safe compare).
        a = self._drain(original, suffix)
        b = self._drain(restored, suffix)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x == y or (math.isnan(x) and math.isnan(y))

    def test_snapshot_is_json_safe(self):
        import json

        from repro.checkpoint import snapshot_state

        estimator = P2Quantile(0.9)
        for x in range(50):
            estimator.add(float(x))
        json.dumps(snapshot_state(estimator))  # must not raise

    def test_streaming_bank_round_trips(self):
        from repro.checkpoint import restore_state, snapshot_state

        bank = StreamingQuantiles()
        for x in range(1, 200):
            bank.add(float(x % 37))
        snapshot = snapshot_state(bank)
        twin = StreamingQuantiles()
        restore_state(twin, snapshot)
        assert twin.values() == bank.values()
