"""Property test: tracing never perturbs simulation statistics.

For identical configs and seeds, a run observed through a
:class:`JsonlTracer` (and a :class:`MetricsRegistry`) must produce a
``SimResult`` identical in every statistic to an unobserved run with a
:class:`NullTracer` — the instrumentation layer's core contract.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import SPECIAL_SWITCH_NAMES, available_schedulers
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import JsonlTracer, NullTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult, run_simulation


def _same(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


def assert_results_identical(base: SimResult, traced: SimResult) -> None:
    assert _same(base.mean_latency, traced.mean_latency)
    assert _same(base.std_latency, traced.std_latency)
    assert _same(base.min_latency, traced.min_latency)
    assert _same(base.max_latency, traced.max_latency)
    assert base.offered == traced.offered
    assert base.forwarded == traced.forwarded
    assert base.dropped == traced.dropped
    assert _same(base.throughput, traced.throughput)
    assert base.percentiles.keys() == traced.percentiles.keys()
    for key in base.percentiles:
        assert _same(base.percentiles[key], traced.percentiles[key])


@pytest.mark.parametrize("scheduler", available_schedulers())
@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_jsonl_tracer_does_not_change_statistics(scheduler, seed, tmp_path_factory):
    config = SimConfig(
        n_ports=4, warmup_slots=20, measure_slots=120, iterations=3, seed=seed
    )
    base = run_simulation(
        config,
        scheduler,
        load=0.85,
        collect_percentiles=True,
        tracer=NullTracer(),
    )
    path = tmp_path_factory.mktemp("traces") / f"{scheduler}-{seed}.jsonl"
    with JsonlTracer(path) as tracer:
        traced = run_simulation(
            config,
            scheduler,
            load=0.85,
            collect_percentiles=True,
            tracer=tracer,
            metrics=MetricsRegistry(),
        )
    assert_results_identical(base, traced)
    if scheduler not in SPECIAL_SWITCH_NAMES:
        # The tracer really observed the run (dedicated switch models
        # like fifo have no VOQ pipeline and ignore instrumentation).
        assert path.stat().st_size > 0


def test_null_tracer_is_bit_identical_to_untraced():
    config = SimConfig(n_ports=4, warmup_slots=10, measure_slots=100, seed=7)
    plain = run_simulation(config, "lcf_central_rr", load=0.9)
    nulled = run_simulation(config, "lcf_central_rr", load=0.9, tracer=NullTracer())
    assert_results_identical(plain, nulled)
