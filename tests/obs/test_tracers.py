"""Tracer backends: null, ring, and JSONL semantics."""

import json

import pytest

from repro.obs import events as ev
from repro.obs.tracer import (
    JsonlTracer,
    NullTracer,
    RingTracer,
    effective_tracer,
    events_from_jsonl,
    write_jsonl,
)


class TestNullTracer:
    def test_disabled_and_silent(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.emit(ev.arrival(0, 0, 0))  # must not raise, must not store

    def test_resolves_to_no_tracer(self):
        assert effective_tracer(NullTracer()) is None
        assert effective_tracer(None) is None

    def test_enabled_tracers_resolve_to_themselves(self):
        ring = RingTracer()
        assert effective_tracer(ring) is ring


class TestRingTracer:
    def test_records_in_order(self):
        tracer = RingTracer()
        tracer.emit(ev.arrival(0, 1, 2))
        tracer.emit(ev.forward(1, 1, 2, 2))
        assert [e["type"] for e in tracer.events] == ["arrival", "forward"]
        assert len(tracer) == 2

    def test_capacity_evicts_oldest(self):
        tracer = RingTracer(capacity=3)
        for slot in range(5):
            tracer.emit(ev.slot_summary(slot, 0, 0))
        assert tracer.emitted == 5
        assert [e["slot"] for e in tracer.events] == [2, 3, 4]

    def test_of_type_filters(self):
        tracer = RingTracer()
        tracer.emit(ev.arrival(0, 0, 0))
        tracer.emit(ev.slot_summary(0, 1, 1))
        assert len(tracer.of_type("slot")) == 1

    def test_of_type_rejects_unknown_kind(self):
        """A typo'd kind is a programming error, not an empty result."""
        tracer = RingTracer()
        tracer.emit(ev.arrival(0, 0, 0))
        with pytest.raises(ValueError, match="unknown event type"):
            tracer.of_type("arival")

    def test_of_type_accepts_new_fault_kinds(self):
        tracer = RingTracer()
        tracer.emit(ev.fault(5, 1, "input"))
        tracer.emit(ev.recovery(9, 1, "input", 4))
        assert len(tracer.of_type("fault")) == 1
        assert tracer.of_type("recovery")[0]["backlog_slots"] == 4

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)


class TestJsonlTracer:
    def test_round_trips_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit(ev.arrival(0, 1, 2))
            tracer.emit(ev.requests(1, [2, 0]))
        events = list(events_from_jsonl(path))
        assert events == [ev.arrival(0, 1, 2), ev.requests(1, [2, 0])]

    def test_lines_are_compact_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.emit(ev.arrival(0, 1, 2))
        line = path.read_text().strip()
        assert json.loads(line)["type"] == "arrival"
        assert ": " not in line  # compact separators

    def test_emit_after_close_raises(self, tmp_path):
        tracer = JsonlTracer(tmp_path / "t.jsonl")
        tracer.close()
        tracer.close()  # idempotent
        with pytest.raises(ValueError):
            tracer.emit(ev.arrival(0, 0, 0))

    def test_write_jsonl_helper(self, tmp_path):
        path = tmp_path / "out.jsonl"
        events = [ev.arrival(0, 0, 1), ev.drop(0, 0, 1)]
        assert write_jsonl(events, path) == 2
        assert list(events_from_jsonl(path)) == events
