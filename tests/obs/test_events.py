"""Event constructors and schema validation."""

import pytest

from repro.obs import events as ev


class TestConstructorsMatchSchema:
    @pytest.mark.parametrize(
        "event",
        [
            ev.arrival(0, 1, 2),
            ev.drop(3, 0, 0),
            ev.admission_drop(4, 1, 2),
            ev.enqueue(1, 2, 3),
            ev.requests(5, [1, 0, 2, 3]),
            ev.sched_step(2, 1, 0, 3, True, 2, 3),
            ev.sched_step(2, 1, 0, -1, False, -1, -1),
            ev.rr_override(9, 4, 4),
            ev.iteration(7, 0, 4, 3),
            ev.iteration(7, 1, 4, 3, requests=9),
            ev.forward(10, 2, 5, 4),
            ev.slot_summary(11, 12, 40),
            ev.slot_summary(11, 12, 40, [3, 0, 7, 1]),
            ev.fault(12, 3, "input"),
            ev.recovery(15, 3, "input", 8),
            ev.recovery(15, 3, "output"),
            ev.suspect(16, 2, 3, "link", 3),
            ev.suspect(16, 2, -1, "input", 4),
            ev.probe(17, 2, 3, "link"),
            ev.probe(17, -1, 3, "output"),
            ev.readmit(18, 2, 3, "link", 12),
            ev.readmit(18, -1, 3, "output", 20),
        ],
    )
    def test_every_constructor_validates(self, event):
        assert ev.validate_event(event) == []

    def test_every_schema_type_has_coverage(self):
        built = {
            ev.arrival(0, 0, 0)["type"],
            ev.drop(0, 0, 0)["type"],
            ev.admission_drop(0, 0, 0)["type"],
            ev.enqueue(0, 0, 0)["type"],
            ev.requests(0, [])["type"],
            ev.sched_step(0, 0, 0, 0, False, 0, 0)["type"],
            ev.rr_override(0, 0, 0)["type"],
            ev.iteration(0, 0, 0, 0)["type"],
            ev.forward(0, 0, 0, 1)["type"],
            ev.slot_summary(0, 0, 0)["type"],
            ev.fault(0, 0, "input")["type"],
            ev.recovery(0, 0, "output")["type"],
            ev.suspect(0, 0, 0, "link", 1)["type"],
            ev.probe(0, 0, 0, "link")["type"],
            ev.readmit(0, 0, 0, "link", 1)["type"],
        }
        assert built == set(ev.EVENT_TYPES)

    def test_requests_totals_nrq(self):
        assert ev.requests(4, [2, 0, 3])["total"] == 5


class TestValidation:
    def test_unknown_type_rejected(self):
        errors = ev.validate_event({"slot": 1, "type": "warp"})
        assert any("unknown event type" in e for e in errors)

    def test_missing_field_rejected(self):
        event = ev.forward(1, 2, 3, 4)
        del event["latency"]
        assert any("missing field" in e for e in ev.validate_event(event))

    def test_extra_field_rejected(self):
        event = ev.arrival(1, 2, 3)
        event["color"] = "red"
        assert any("unexpected fields" in e for e in ev.validate_event(event))

    def test_negative_slot_rejected(self):
        assert any("bad slot" in e for e in ev.validate_event(ev.arrival(-1, 0, 0)))

    def test_bool_not_accepted_as_int(self):
        event = ev.arrival(1, True, 0)
        assert any("bool" in e for e in ev.validate_event(event))

    def test_non_dict_rejected(self):
        assert ev.validate_event([1, 2]) != []

    def test_non_int_list_items_rejected(self):
        event = ev.requests(1, [1, 2])
        event["nrq"] = [1, "two"]
        assert any("list items" in e for e in ev.validate_event(event))
