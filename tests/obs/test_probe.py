"""MatchingQualityProbe: transparency and scoring."""

import numpy as np
import pytest

from repro.baselines.registry import make_scheduler
from repro.core.lcf_central import LCFCentral
from repro.obs.probe import MatchingQualityProbe


def random_requests(rng, n=4, density=0.5):
    return rng.random((n, n)) < density


def test_probe_is_transparent():
    rng = np.random.default_rng(11)
    plain = LCFCentral(4)
    probed = MatchingQualityProbe(LCFCentral(4))
    for _ in range(50):
        matrix = random_requests(rng)
        assert np.array_equal(plain.schedule(matrix), probed.schedule(matrix.copy()))


def test_efficiency_is_one_for_maximum_matcher():
    # Central LCF with sequential allocation is maximal but not always
    # maximum; on a diagonal-only matrix it trivially achieves maximum.
    probe = MatchingQualityProbe(LCFCentral(3))
    probe.schedule(np.eye(3, dtype=bool))
    assert probe.slots == 1
    assert probe.achieved_total == probe.maximum_total == 3
    assert probe.efficiency == 1.0
    assert probe.mean_matching == probe.mean_maximum == 3.0


def test_efficiency_bounded_by_one():
    rng = np.random.default_rng(3)
    probe = MatchingQualityProbe(make_scheduler("pim", 6, iterations=1, seed=0))
    for _ in range(40):
        probe.schedule(random_requests(rng, n=6))
    assert 0.0 < probe.efficiency <= 1.0
    assert probe.mean_matching <= probe.mean_maximum


def test_rejects_weight_schedulers():
    with pytest.raises(ValueError):
        MatchingQualityProbe(make_scheduler("lqf", 4))


def test_trace_recording_passes_through():
    inner = LCFCentral(4)
    probe = MatchingQualityProbe(inner)
    probe.record_trace = True
    assert inner.record_trace
    probe.schedule(np.eye(4, dtype=bool))
    assert probe.last_trace is inner.last_trace
    assert len(probe.last_trace) == 4


def test_rr_position_passes_through():
    dist_rr = make_scheduler("lcf_dist_rr", 4)
    assert MatchingQualityProbe(dist_rr).rr_position == dist_rr.rr_position
    assert MatchingQualityProbe(LCFCentral(4)).rr_position is None


def test_reset_clears_scores():
    probe = MatchingQualityProbe(LCFCentral(3))
    probe.schedule(np.eye(3, dtype=bool))
    probe.reset()
    assert probe.slots == 0
    assert np.isnan(probe.efficiency)


class TestHopcroftKarpCache:
    def test_repeated_matrices_hit_the_cache(self):
        probe = MatchingQualityProbe(LCFCentral(4))
        matrix = np.eye(4, dtype=bool)
        for _ in range(5):
            probe.schedule(matrix.copy())
        assert probe.cache_misses == 1
        assert probe.cache_hits == 4

    def test_distinct_matrices_miss(self):
        probe = MatchingQualityProbe(LCFCentral(3))
        probe.schedule(np.eye(3, dtype=bool))
        probe.schedule(np.ones((3, 3), dtype=bool))
        assert probe.cache_misses == 2
        assert probe.cache_hits == 0

    def test_scores_match_an_uncached_probe(self):
        rng = np.random.default_rng(7)
        matrices = [random_requests(rng, n=5) for _ in range(60)]
        # Repeat matrices so the cached probe actually exercises hits.
        workload = matrices + matrices[::-1]
        cached = MatchingQualityProbe(LCFCentral(5))
        uncached = MatchingQualityProbe(LCFCentral(5), max_cache_entries=1)
        for matrix in workload:
            cached.schedule(matrix)
            uncached.schedule(matrix)
        assert cached.cache_hits > 0
        assert cached.maximum_total == uncached.maximum_total
        assert cached.achieved_total == uncached.achieved_total
        assert cached.efficiency == uncached.efficiency

    def test_overflow_clears_and_keeps_counting(self):
        probe = MatchingQualityProbe(LCFCentral(2), max_cache_entries=2)
        a = np.array([[1, 0], [0, 1]], dtype=bool)
        b = np.array([[1, 1], [0, 0]], dtype=bool)
        c = np.array([[0, 1], [1, 0]], dtype=bool)
        for matrix in (a, b, c, a):
            probe.schedule(matrix)
        # a and b filled the cache; c cleared it before inserting, so
        # the final a is a miss again — 4 misses, zero hits, right sums.
        assert probe.cache_misses == 4
        assert probe.cache_hits == 0
        assert probe.maximum_total == 2 + 1 + 2 + 2

    def test_reset_clears_cache_and_counters(self):
        probe = MatchingQualityProbe(LCFCentral(3))
        probe.schedule(np.eye(3, dtype=bool))
        probe.schedule(np.eye(3, dtype=bool))
        probe.reset()
        assert probe.cache_hits == probe.cache_misses == 0
        probe.schedule(np.eye(3, dtype=bool))
        assert probe.cache_misses == 1

    def test_rejects_nonpositive_cache_bound(self):
        with pytest.raises(ValueError):
            MatchingQualityProbe(LCFCentral(3), max_cache_entries=0)
