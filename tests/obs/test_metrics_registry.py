"""Counters, gauges, histograms, and the registry contract."""

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge()
        assert math.isnan(gauge.value)
        gauge.set(3.0)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_buckets_are_upper_inclusive(self):
        hist = Histogram(buckets=[1, 2, 4])
        for value in (0, 1, 2, 3, 4):
            hist.observe(value)
        assert hist.counts == [2, 1, 2]
        assert hist.overflow == 0
        hist.observe(5)
        assert hist.overflow == 1

    def test_streaming_stats(self):
        hist = Histogram(buckets=[10])
        for value in (2, 4, 6):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 12
        assert hist.mean == 4
        assert hist.min == 2
        assert hist.max == 6

    def test_empty_histogram_stats_are_nan(self):
        hist = Histogram(buckets=[1])
        assert math.isnan(hist.mean)
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert math.isnan(snap["min"]) and math.isnan(snap["max"])

    def test_snapshot_shape(self):
        hist = Histogram(buckets=[1, 2])
        hist.observe(1)
        hist.observe(9)
        snap = hist.snapshot()
        assert snap["buckets"] == {"1": 1, "2": 0}
        assert snap["overflow"] == 1

    def test_render_mentions_every_bucket(self):
        hist = Histogram(buckets=[1, 2])
        hist.observe(1)
        hist.observe(3)
        text = hist.render(width=10)
        assert "<= 1" in text and "<= 2" in text and "> 2" in text

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[])


class TestMetricsRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("grants").inc()
        registry.counter("grants").inc()
        assert registry.counter("grants").value == 2
        assert len(registry) == 1
        assert "grants" in registry

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x", buckets=[1])

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=[1, 2])
        registry.histogram("lat", buckets=[2, 1])  # same edges after sort
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=[1, 2, 3])

    def test_names_sorted_and_get(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert isinstance(registry.get("a"), Counter)
        assert registry.get("missing") is None

    def test_snapshot_is_flat_and_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("forwarded").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("size", buckets=[1, 2]).observe(2)
        snap = registry.snapshot()
        assert snap["forwarded"] == 3
        assert snap["depth"] == 2.0
        assert snap["size"]["count"] == 1

    def test_kind_and_instruments_iteration(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        registry.histogram("h", buckets=[1])
        assert registry.kind("c") == "counter"
        assert registry.kind("g") == "gauge"
        assert registry.kind("h") == "histogram"
        assert registry.kind("missing") is None
        assert [name for name, _ in registry.instruments()] == ["c", "g", "h"]


class TestCollectors:
    def test_collect_refreshes_derived_gauges(self):
        registry = MetricsRegistry()
        source = {"value": 1.0}
        registry.add_collector(
            "derived", lambda: registry.gauge("derived").set(source["value"])
        )
        registry.collect()
        assert registry.gauge("derived").value == 1.0
        source["value"] = 7.5
        assert registry.snapshot()["derived"] == 7.5  # snapshot collects

    def test_same_key_replaces_instead_of_stacking(self):
        registry = MetricsRegistry()
        calls = []
        registry.add_collector("k", lambda: calls.append("old"))
        registry.add_collector("k", lambda: calls.append("new"))
        registry.collect()
        assert calls == ["new"]

    def test_collectors_run_in_registration_order(self):
        registry = MetricsRegistry()
        order = []
        registry.add_collector("b", lambda: order.append("b"))
        registry.add_collector("a", lambda: order.append("a"))
        registry.collect()
        assert order == ["b", "a"]
