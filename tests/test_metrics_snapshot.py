"""OpenMetrics snapshots must pass ``tools/check_metrics_snapshot.py``.

Thin pytest wrapper around the conformance tool (CI also runs the script
against a freshly scraped snapshot) so renderer/validator drift fails
the tier-1 suite — the same pattern as ``test_docs_consistency.py``.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_metrics_snapshot.py"

VALID = """\
# TYPE forwarded counter
forwarded 7
# TYPE depth gauge
depth NaN
# TYPE delay histogram
delay_bucket{le="1"} 2
delay_bucket{le="4"} 3
delay_bucket{le="+Inf"} 4
delay_sum 14
delay_count 4
# EOF
"""


def load_tool():
    spec = importlib.util.spec_from_file_location("check_metrics_snapshot", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_valid_snapshot_passes():
    tool = load_tool()
    assert tool.validate_openmetrics(VALID) == []
    assert tool.validate_openmetrics(VALID, ["forwarded", "delay"]) == []


def test_missing_expected_name_fails():
    tool = load_tool()
    errors = tool.validate_openmetrics(VALID, ["forwarded", "absent"])
    assert errors == ["expected metric absent not present"]


def test_missing_eof_fails():
    tool = load_tool()
    errors = tool.validate_openmetrics(VALID.replace("# EOF\n", ""))
    assert any("EOF" in error for error in errors)


def test_untyped_sample_fails():
    tool = load_tool()
    errors = tool.validate_openmetrics(VALID.replace("# TYPE forwarded counter\n", ""))
    assert any("no # TYPE line" in error for error in errors)


def test_negative_counter_fails():
    tool = load_tool()
    errors = tool.validate_openmetrics(VALID.replace("forwarded 7", "forwarded -1"))
    assert any("counter forwarded" in error for error in errors)


def test_nan_counter_fails_but_nan_gauge_is_fine():
    tool = load_tool()
    errors = tool.validate_openmetrics(VALID.replace("forwarded 7", "forwarded NaN"))
    assert any("counter forwarded" in error for error in errors)


def test_decreasing_cumulative_buckets_fail():
    tool = load_tool()
    broken = VALID.replace('delay_bucket{le="4"} 3', 'delay_bucket{le="4"} 1')
    errors = tool.validate_openmetrics(broken)
    assert any("cumulative" in error for error in errors)


def test_inf_bucket_must_equal_count():
    tool = load_tool()
    broken = VALID.replace('delay_bucket{le="+Inf"} 4', 'delay_bucket{le="+Inf"} 5')
    errors = tool.validate_openmetrics(broken)
    assert any("+Inf bucket" in error for error in errors)


def test_missing_inf_bucket_fails():
    tool = load_tool()
    broken = VALID.replace('delay_bucket{le="+Inf"} 4\n', "")
    errors = tool.validate_openmetrics(broken)
    assert any("+Inf" in error for error in errors)


def test_unordered_le_edges_fail():
    tool = load_tool()
    broken = VALID.replace(
        'delay_bucket{le="1"} 2\ndelay_bucket{le="4"} 3',
        'delay_bucket{le="4"} 3\ndelay_bucket{le="1"} 2',
    )
    errors = tool.validate_openmetrics(broken)
    assert any("increasing" in error for error in errors)


def test_real_rendered_registry_is_conformant():
    """End to end: a live registry render passes the tool's CLI."""
    sys.path.insert(0, str(TOOL.parent.parent / "src"))
    try:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.serve import render_openmetrics
    finally:
        sys.path.pop(0)
    registry = MetricsRegistry()
    registry.counter("slots").inc(100)
    registry.histogram("matching_size", range(5)).observe(3)
    text = render_openmetrics(registry, slot=99)
    tool = load_tool()
    assert tool.validate_openmetrics(text, ["slots", "matching_size"]) == []


def test_cli_exit_codes(tmp_path):
    good = tmp_path / "good.prom"
    good.write_text(VALID)
    bad = tmp_path / "bad.prom"
    bad.write_text(VALID.replace("# EOF\n", ""))
    env_cmd = [sys.executable, str(TOOL)]
    assert subprocess.run([*env_cmd, str(good)]).returncode == 0
    assert subprocess.run([*env_cmd, str(good), "--expect", "nope"]).returncode == 1
    assert subprocess.run([*env_cmd, str(bad)]).returncode == 1
    assert subprocess.run([*env_cmd, str(tmp_path / "missing.prom")]).returncode == 2
