"""Crossbar fabric model."""

import numpy as np
import pytest

from repro.fabric.crossbar import CrossbarFabric
from repro.types import NO_GRANT


class TestCrossbarFabric:
    def test_crosspoint_cost_is_quadratic(self):
        assert CrossbarFabric(16).crosspoints == 256

    def test_nonblocking(self):
        assert CrossbarFabric(4).is_nonblocking()

    def test_configure_closes_granted_crosspoints(self):
        fabric = CrossbarFabric(3)
        state = fabric.configure(np.array([2, NO_GRANT, 0], dtype=np.int64))
        assert state[0, 2] and state[2, 0]
        assert state.sum() == 2

    def test_conflicting_schedule_rejected(self):
        fabric = CrossbarFabric(3)
        with pytest.raises(ValueError, match="two inputs"):
            fabric.configure(np.array([1, 1, NO_GRANT], dtype=np.int64))

    def test_out_of_range_rejected(self):
        fabric = CrossbarFabric(3)
        with pytest.raises(ValueError):
            fabric.configure(np.array([0, 1, 5], dtype=np.int64))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            CrossbarFabric(3).configure(np.array([0, 1], dtype=np.int64))
