"""``lcf-fabric`` CLI: argument validation, exit codes, and artifacts.

Every negative path must exit 2 *before* any simulation runs or any
artifact file is opened — a bad invocation leaves no partial output.
"""

from __future__ import annotations

import json

import pytest

from repro.fabric.cli import (
    _csv_cell,
    _parse_grid,
    _parse_stage_fault,
    _parse_topology,
    _rows_to_csv,
    main,
)


def run_cli(*argv):
    return main(list(argv))


class TestParsers:
    def test_topology(self):
        assert _parse_topology("2,4,3") == (2, 4, 3)

    def test_topology_rejects_garbage(self):
        import argparse
        for bad in ("2,4", "a,b,c", "0,4,4"):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_topology(bad)

    def test_stage_fault(self):
        stage, index, plan = _parse_stage_fault("1.2:0:50:99")
        assert (stage, index) == (1, 2)
        assert plan == (("port_down", ((0, 50, 99, "both"),)),)

    def test_stage_fault_with_side(self):
        _, _, plan = _parse_stage_fault("0.1:3:10:20:input")
        assert plan == (("port_down", ((3, 10, 20, "input"),)),)

    def test_grid(self):
        assert _parse_grid("0.5,0.8,1.0") == (0.5, 0.8, 1.0)


class TestNegativePaths:
    """Well-formed nonsense exits 2 with no artifact written."""

    CASES = (
        ("--topology", "4,4,4", "--single", "16"),     # conflicting topology
        ("--square", "0"),
        ("--load", "1.5"),
        ("--load", "0"),
        ("--boundary", "0"),
        ("--link-delay", "0"),
        ("--shards", "0"),
        ("--load-grid", ",",),
        ("--load-grid", "0.5,2.0"),
        ("--schedulers", ","),
        ("--schedulers", "not_a_scheduler"),           # spec-level error
        ("--schedulers", "islip,pim"),                 # wrong count for 3 stages
        ("--single", "16", "--schedulers", "a,b,c"),
        ("--fault", "5.0:0:1:2"),                      # stage off topology
    )

    @pytest.mark.parametrize("extra", CASES, ids=lambda c: " ".join(c))
    def test_exits_2_without_artifacts(self, extra, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        code = run_cli(
            "--slots", "20", "--warmup", "0",
            "--csv", str(csv_path), "--json", str(json_path), *extra,
        )
        assert code == 2
        assert not csv_path.exists()
        assert not json_path.exists()
        assert capsys.readouterr().err.strip()

    def test_malformed_values_exit_2_via_argparse(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            run_cli("--topology", "nope")
        assert exc.value.code == 2


class TestSingleRun:
    def test_writes_csv_json_and_trace(self, tmp_path, capsys):
        csv_path = tmp_path / "run.csv"
        json_path = tmp_path / "run.json"
        trace_path = tmp_path / "trace.jsonl"
        code = run_cli(
            "--topology", "4,4,4", "--slots", "60", "--warmup", "20",
            "--csv", str(csv_path), "--json", str(json_path),
            "--trace-out", str(trace_path),
        )
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 2
        header = lines[0].split(",")
        assert "throughput" in header and "backpressure_slots" in header

        report = json.loads(json_path.read_text())
        assert report["mode"] == "single"
        assert report["key"]
        assert dict(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in report["spec"]
        )
        assert report["row"]["forwarded"] >= 0

        trace = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert trace and all("switch" in event for event in trace)
        assert "C(4,4,4)" in capsys.readouterr().out

    def test_quiet_single_run_prints_nothing(self, capsys):
        assert run_cli("--slots", "30", "--warmup", "0", "--quiet") == 0
        assert capsys.readouterr().out == ""

    def test_single_switch_mode(self, capsys):
        code = run_cli(
            "--single", "8", "--schedulers", "islip",
            "--slots", "50", "--warmup", "10",
        )
        assert code == 0
        assert "single 8-port islip crossbar" in capsys.readouterr().out

    def test_sharded_run_with_fault(self, tmp_path):
        json_path = tmp_path / "fault.json"
        code = run_cli(
            "--topology", "4,4,4", "--slots", "100", "--warmup", "0",
            "--fault", "1.0:0:20:60", "--shards", "2", "--quiet",
            "--json", str(json_path),
        )
        assert code == 0
        row = json.loads(json_path.read_text())["row"]
        # Default side "both" downs the input and the output port.
        assert row["fault_events"] == 2
        assert row["degraded_slots"] == 40


class TestLoadGrid:
    def test_grid_artifacts(self, tmp_path, capsys):
        csv_path = tmp_path / "grid.csv"
        json_path = tmp_path / "grid.json"
        code = run_cli(
            "--square", "16", "--load-grid", "0.5,0.9",
            "--slots", "60", "--warmup", "20",
            "--csv", str(csv_path), "--json", str(json_path),
        )
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 3  # header + one row per load
        report = json.loads(json_path.read_text())
        assert report["mode"] == "load-grid"
        assert report["loads"] == [0.5, 0.9]
        assert [row["load"] for row in report["rows"]] == [0.5, 0.9]
        assert "load 0.5" in capsys.readouterr().out


class TestCsvQuoting:
    def test_cells_with_commas_are_quoted(self):
        text = _rows_to_csv([{"a": "x,y", "b": 'say "hi"', "c": 3}])
        assert text.splitlines()[1] == '"x,y","say ""hi""",3'

    def test_plain_cells_unquoted(self):
        assert _csv_cell(1.25) == "1.25"
