"""Clos network: non-blocking conditions and Slepian–Duguid routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcf_central import LCFCentralRR
from repro.fabric.clos import ClosNetwork, square_clos
from repro.types import NO_GRANT


def permutation_schedule(rng, n):
    return rng.permutation(n).astype(np.int64)


def partial_schedule(rng, n, density=0.6):
    schedule = np.full(n, NO_GRANT, dtype=np.int64)
    outputs = rng.permutation(n)
    for i in range(n):
        if rng.random() < density:
            schedule[i] = outputs[i]
    return schedule


class TestStructure:
    def test_port_count(self):
        assert ClosNetwork(m=4, k=4, r=4).n_ports == 16

    def test_crosspoint_formula(self):
        net = ClosNetwork(m=3, k=3, r=4)
        assert net.crosspoints == 2 * 4 * 3 * 3 + 3 * 16

    def test_clos_beats_crossbar_for_large_n(self):
        # The entire point of Clos (1953): fewer crosspoints than n^2.
        net = square_clos(256)
        assert net.n_ports == 256
        assert net.crosspoints < 256 * 256

    def test_nonblocking_conditions(self):
        assert ClosNetwork(m=4, k=4, r=4).is_rearrangeably_nonblocking()
        assert not ClosNetwork(m=3, k=4, r=4).is_rearrangeably_nonblocking()
        assert ClosNetwork(m=7, k=4, r=4).is_strictly_nonblocking()
        assert not ClosNetwork(m=6, k=4, r=4).is_strictly_nonblocking()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ClosNetwork(m=0, k=2, r=2)

    def test_square_construction(self):
        net = square_clos(16)
        assert net.n_ports == 16
        assert net.is_rearrangeably_nonblocking()


class TestRouting:
    def test_empty_schedule(self):
        net = ClosNetwork(m=2, k=2, r=2)
        routing = net.route(np.full(4, NO_GRANT, dtype=np.int64))
        assert routing.assignments == ()

    def test_identity_permutation(self):
        net = ClosNetwork(m=3, k=3, r=3)
        routing = net.route(np.arange(9, dtype=np.int64))
        assert len(routing.assignments) == 9
        assert net.validate_routing(routing)

    def test_full_permutation_routes_when_rearrangeable(self):
        rng = np.random.default_rng(0)
        net = ClosNetwork(m=4, k=4, r=4)
        for _ in range(20):
            schedule = permutation_schedule(rng, net.n_ports)
            routing = net.route(schedule)
            assert len(routing.assignments) == net.n_ports
            assert net.validate_routing(routing)

    def test_partial_schedules_route(self):
        rng = np.random.default_rng(1)
        net = ClosNetwork(m=3, k=3, r=5)
        for _ in range(20):
            schedule = partial_schedule(rng, net.n_ports)
            routing = net.route(schedule)
            granted = int((schedule != NO_GRANT).sum())
            assert len(routing.assignments) == granted
            assert net.validate_routing(routing)

    def test_thin_network_rejects_heavy_demand(self):
        # m=1 but two connections share an ingress switch: impossible.
        net = ClosNetwork(m=1, k=2, r=2)
        schedule = np.array([0, 2, NO_GRANT, NO_GRANT], dtype=np.int64)
        with pytest.raises(ValueError, match="middle switches"):
            net.route(schedule)

    def test_conflicting_schedule_rejected(self):
        net = ClosNetwork(m=2, k=2, r=2)
        with pytest.raises(ValueError, match="two inputs"):
            net.route(np.array([0, 0, NO_GRANT, NO_GRANT], dtype=np.int64))

    def test_middle_of_lookup(self):
        net = ClosNetwork(m=2, k=2, r=2)
        routing = net.route(np.array([1, NO_GRANT, NO_GRANT, NO_GRANT], dtype=np.int64))
        assert routing.middle_of(0, 1) is not None
        assert routing.middle_of(2, 3) is None

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_permutations_always_route_and_validate(self, seed):
        rng = np.random.default_rng(seed)
        net = ClosNetwork(m=3, k=3, r=4)
        schedule = permutation_schedule(rng, net.n_ports)
        routing = net.route(schedule)
        assert net.validate_routing(routing)
        # Every connection got a distinct middle per ingress and egress
        # implicitly; also check the middle index range.
        assert all(0 <= mid < net.m for _, _, mid in routing.assignments)


class TestWithSchedulers:
    def test_lcf_schedules_are_clos_routable(self):
        """End-to-end: matchings from the paper's scheduler realised on
        the paper's alternative fabric."""
        rng = np.random.default_rng(2)
        net = ClosNetwork(m=4, k=4, r=4)
        scheduler = LCFCentralRR(net.n_ports)
        for _ in range(30):
            requests = rng.random((16, 16)) < 0.5
            schedule = scheduler.schedule(requests)
            routing = net.route(schedule)
            assert net.validate_routing(routing)
            assert len(routing.assignments) == int((schedule != NO_GRANT).sum())
