"""FabricSpec validation, derived topology, and the spec round trip."""

from __future__ import annotations

import pytest

from repro.fabric.spec import (
    ROUTING_POLICIES,
    UNSUPPORTED_FABRIC_SCHEDULERS,
    FabricSpec,
)
from repro.sim.config import SimConfig


def small_spec(**changes) -> FabricSpec:
    defaults = dict(
        m=4, k=4, r=4,
        config=SimConfig(n_ports=16, warmup_slots=10, measure_slots=50),
    )
    defaults.update(changes)
    return FabricSpec(**defaults)


class TestValidation:
    def test_stages_must_be_1_or_3(self):
        with pytest.raises(ValueError, match="stages"):
            small_spec(stages=2)

    def test_dimensions_positive(self):
        with pytest.raises(ValueError, match="m, k, r"):
            small_spec(m=0)

    def test_config_ports_must_match_topology(self):
        with pytest.raises(ValueError, match="n_ports"):
            small_spec(config=SimConfig(n_ports=8))

    def test_scheduler_count_one_or_per_stage(self):
        with pytest.raises(ValueError, match="schedulers"):
            small_spec(schedulers=("islip", "pim"))

    @pytest.mark.parametrize("name", sorted(UNSUPPORTED_FABRIC_SCHEDULERS))
    def test_unsupported_schedulers_rejected(self, name):
        with pytest.raises(ValueError, match="cannot drive a fabric stage"):
            small_spec(schedulers=(name,))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="cannot drive a fabric stage"):
            small_spec(schedulers=("nope",))

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="routing"):
            small_spec(routing="teleport")

    def test_boundary_and_link_delay_positive(self):
        with pytest.raises(ValueError, match="boundary_capacity"):
            small_spec(boundary_capacity=0)
        with pytest.raises(ValueError, match="link_delay"):
            small_spec(link_delay=0)

    def test_load_range(self):
        with pytest.raises(ValueError, match="load"):
            small_spec(load=0.0)
        with pytest.raises(ValueError, match="load"):
            small_spec(load=1.5)

    def test_fault_coordinates_checked(self):
        with pytest.raises(ValueError, match="stage_faults"):
            small_spec(stage_faults=((3, 0, ()),))
        with pytest.raises(ValueError, match="stage_faults"):
            small_spec(stage_faults=((1, 4, ()),))

    def test_adapt_coordinates_checked(self):
        with pytest.raises(ValueError, match="stage_adapt"):
            small_spec(stage_adapt=((0, 9, ()),))


class TestDerivedTopology:
    def test_three_stage_counts_and_sizes(self):
        spec = FabricSpec(m=2, k=4, r=3, config=SimConfig(n_ports=12))
        assert spec.n_ports == 12
        assert spec.stage_counts == (3, 2, 3)
        # Ingress is 4x2, egress 2x4 -> both embed in a 4x4 crossbar;
        # the middle stage is r x r.
        assert spec.stage_sizes == (4, 3, 4)
        assert spec.n_switches == 8

    def test_degenerate_counts_and_sizes(self):
        spec = FabricSpec.single(16)
        assert spec.stages == 1
        assert spec.stage_counts == (1,)
        assert spec.stage_sizes == (16,)
        assert spec.n_switches == 1

    def test_stage_schedulers_broadcast(self):
        assert small_spec().stage_schedulers == ("lcf_central_rr",) * 3
        mix = ("islip", "lcf_central_rr", "pim")
        assert small_spec(schedulers=mix).stage_schedulers == mix

    def test_switch_label(self):
        assert small_spec().switch_label(1, 3) == "s1.3"

    def test_square_constructor(self):
        spec = FabricSpec.square(64)
        assert (spec.m, spec.k, spec.r) == (8, 8, 8)
        assert spec.n_ports == 64
        # Non-perfect-square port counts fall back to a divisor.
        spec = FabricSpec.square(24)
        assert spec.k * spec.r == 24

    def test_describe_mentions_topology(self):
        text = small_spec().describe()
        assert "C(4,4,4)" in text
        assert "16-port" in text


class TestSpecRoundTrip:
    def test_default_round_trip(self):
        spec = small_spec()
        assert FabricSpec.from_spec(spec.to_spec()) == spec

    def test_full_round_trip(self):
        spec = small_spec(
            schedulers=("islip", "lcf_central_rr", "pim"),
            load=0.95,
            traffic="bursty",
            traffic_kwargs=(("burst_length", 10),),
            routing="least_loaded",
            boundary_capacity=8,
            link_delay=3,
            stage_faults=((1, 0, (("port_down", ((0, 5, 9, "both"),)),)),),
            stage_adapt=((2, 1, (("policy", "adaptive"),)),),
        )
        assert FabricSpec.from_spec(spec.to_spec()) == spec

    def test_degenerate_round_trip(self):
        spec = FabricSpec.single(8, "islip", load=0.5)
        assert FabricSpec.from_spec(spec.to_spec()) == spec

    def test_key_stable_and_distinct(self):
        spec = small_spec()
        assert spec.key() == small_spec().key()
        assert spec.key() != small_spec(load=0.5).key()
        assert spec.key() != small_spec(routing="offline").key()

    def test_defaults_omitted_from_spec(self):
        pairs = dict(small_spec().to_spec())
        # Only non-default fields appear, so later additions with
        # defaults cannot change existing cache keys.
        assert "routing" not in pairs
        assert "boundary_capacity" not in pairs
        assert "stage_faults" not in pairs

    def test_from_spec_accepts_dict(self):
        spec = small_spec()
        assert FabricSpec.from_spec(dict(spec.to_spec())) == spec

    @pytest.mark.parametrize("routing", ROUTING_POLICIES)
    def test_all_routing_policies_accepted(self, routing):
        assert small_spec(routing=routing).routing == routing
