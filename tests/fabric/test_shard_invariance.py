"""Shard-count invariance: the sharded fabric engine is bit-identical
to the serial one — statistics AND traces — for any shard count.

This is the correctness contract that makes shard-parallel execution
safe to use anywhere the serial engine is: conservative slot-block
synchronisation plus canonical delivery ordering means the shard
decomposition is unobservable.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.sim import run_fabric
from repro.fabric.spec import FabricSpec
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation

#: Scheduler mixes the property sweeps over — a homogeneous LCF fabric
#: and a deliberately heterogeneous per-stage mix.
MIXES = (
    ("lcf_central_rr",),
    ("islip", "lcf_central_rr", "lcf_dist_rr"),
)

FAULTED_MIDDLE = ((1, 1, (("port_down", ((0, 40, 90, "output"),)),)),)


def fabric_spec(mix, seed, load, boundary, faults=()):
    return FabricSpec(
        m=4, k=4, r=4,
        schedulers=mix,
        config=SimConfig(
            n_ports=16, warmup_slots=30, measure_slots=150, seed=seed
        ),
        load=load,
        boundary_capacity=boundary,
        stage_faults=faults,
    )


def run_traced(spec, shards):
    tracer = RingTracer(1 << 18)
    result = run_fabric(spec, shards=shards, tracer=tracer)
    return result, tracer.events


def assert_identical(spec, shards):
    serial, serial_events = run_traced(spec, 1)
    sharded, sharded_events = run_traced(spec, shards)
    # Statistics: exact float equality, not approx — same arithmetic
    # in the same order or the engine is wrong.
    assert serial.mean_latency == sharded.mean_latency
    assert serial.std_latency == sharded.std_latency
    assert serial.max_latency == sharded.max_latency
    assert serial.offered == sharded.offered
    assert serial.forwarded == sharded.forwarded
    assert serial.dropped == sharded.dropped
    assert serial.stage_forwards == sharded.stage_forwards
    assert serial.backpressure_slots == sharded.backpressure_slots
    assert serial.fault_events == sharded.fault_events
    assert serial.degraded_slots == sharded.degraded_slots
    # Traces: the merged event streams are the same, event for event.
    assert serial_events == sharded_events


class TestShardInvariance:
    @settings(max_examples=10, deadline=None)
    @given(
        mix=st.sampled_from(MIXES),
        shards=st.sampled_from((2, 4)),
        seed=st.integers(min_value=1, max_value=2**31 - 1),
        load=st.sampled_from((0.5, 0.85, 1.0)),
    )
    def test_stats_and_traces_identical(self, mix, shards, seed, load):
        assert_identical(fabric_spec(mix, seed, load, boundary=16), shards)

    @settings(max_examples=6, deadline=None)
    @given(
        shards=st.sampled_from((2, 4)),
        seed=st.integers(min_value=1, max_value=2**31 - 1),
    )
    def test_identical_under_backpressure(self, shards, seed):
        # boundary=1 maximises cross-shard credit traffic — the
        # hardest case for exchange ordering.
        assert_identical(
            fabric_spec(MIXES[1], seed, 1.0, boundary=1), shards
        )

    @settings(max_examples=6, deadline=None)
    @given(
        shards=st.sampled_from((2, 4)),
        seed=st.integers(min_value=1, max_value=2**31 - 1),
    )
    def test_identical_with_faulted_middle_switch(self, shards, seed):
        assert_identical(
            fabric_spec(MIXES[0], seed, 0.9, boundary=8,
                        faults=FAULTED_MIDDLE),
            shards,
        )

    def test_shards_clamped_to_switch_count(self):
        spec = fabric_spec(MIXES[0], seed=7, load=0.8, boundary=16)
        oversubscribed = run_fabric(spec, shards=64)  # > 12 switches
        serial = run_fabric(spec)
        assert oversubscribed.mean_latency == serial.mean_latency


class TestProcessBackend:
    def test_process_backend_matches_inline(self):
        spec = fabric_spec(MIXES[1], seed=11, load=0.9, boundary=4,
                           faults=FAULTED_MIDDLE)
        inline = run_fabric(spec, shards=3)
        process = run_fabric(spec, shards=3, backend="process")
        assert inline.mean_latency == process.mean_latency
        assert inline.stage_forwards == process.stage_forwards
        assert inline.backpressure_slots == process.backpressure_slots
        assert inline.degraded_slots == process.degraded_slots


class TestDegenerateFabric:
    """A 1-stage, 1-switch fabric under sharding still equals
    ``run_simulation`` bit for bit (shards clamp to 1)."""

    @pytest.mark.parametrize("scheduler", ["lcf_central_rr", "islip"])
    def test_sharded_degenerate_equals_run_simulation(self, scheduler):
        config = SimConfig(n_ports=16, warmup_slots=50, measure_slots=200)
        spec = FabricSpec.single(16, scheduler, config=config, load=0.9)
        fabric = run_fabric(spec, shards=4)
        single = run_simulation(config, scheduler, 0.9)
        assert fabric.mean_latency == single.mean_latency
        assert fabric.std_latency == single.std_latency
        assert fabric.forwarded == single.forwarded
        assert fabric.throughput == single.throughput
