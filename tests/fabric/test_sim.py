"""Fabric engine semantics: degenerate bit-identity, conservation,
backpressure, routing, faults, and observability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fabric.clos import ClosNetwork
from repro.fabric.sim import FabricShard, run_fabric
from repro.fabric.spec import FabricSpec
from repro.obs.events import validate_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation

SMALL = SimConfig(n_ports=16, warmup_slots=50, measure_slots=250)


def clos_spec(**changes) -> FabricSpec:
    defaults = dict(m=4, k=4, r=4, config=SMALL, load=0.85)
    defaults.update(changes)
    return FabricSpec(**defaults)


class TestDegenerateBitIdentity:
    """A 1-stage fabric IS run_simulation — same floats, same counters."""

    @pytest.mark.parametrize("scheduler", ["lcf_central_rr", "islip", "lqf"])
    @pytest.mark.parametrize("load", [0.5, 1.0])
    def test_matches_run_simulation(self, scheduler, load):
        spec = FabricSpec.single(16, scheduler, config=SMALL, load=load)
        fabric = run_fabric(spec, collect_percentiles=True)
        single = run_simulation(
            SMALL, scheduler, load, collect_percentiles=True
        )
        assert fabric.mean_latency == single.mean_latency
        assert fabric.std_latency == single.std_latency
        assert fabric.max_latency == single.max_latency
        assert fabric.offered == single.offered
        assert fabric.forwarded == single.forwarded
        assert fabric.dropped == single.dropped
        assert fabric.throughput == single.throughput
        assert fabric.percentiles == single.percentiles

    def test_matches_under_overload_with_drops(self):
        config = SimConfig(
            n_ports=8, voq_capacity=1, pq_capacity=2,
            warmup_slots=20, measure_slots=200,
        )
        spec = FabricSpec.single(8, "islip", config=config, load=1.0)
        fabric = run_fabric(spec)
        single = run_simulation(config, "islip", 1.0)
        assert fabric.dropped == single.dropped > 0
        assert fabric.mean_latency == single.mean_latency


class TestConservation:
    def test_packets_are_conserved(self):
        result = run_fabric(clos_spec())
        in_flight = result.generated - result.delivered - result.dropped
        assert in_flight >= 0
        # Forward counts can only shrink stage to stage (no stage
        # creates packets) and deliveries equal the last stage's count.
        s0, s1, s2 = result.stage_forwards
        assert s0 >= s1 >= s2 == result.delivered

    def test_interior_stages_never_drop(self):
        """Credits bound boundary-queue depth, so all loss is at the
        source NICs: interior packet queues never overflow."""
        spec = clos_spec(load=1.0, boundary_capacity=2, link_delay=2)
        shard = FabricShard(spec)
        for slot in range(spec.config.total_slots):
            shard._slot(slot)
        for (stage, _), switch in shard.switches.items():
            if stage > 0:
                assert switch.dropped == 0
        harvest = shard.harvest()
        assert harvest["backpressure_slots"] > 0

    def test_boundary_queue_depth_bounded_by_credits(self):
        spec = clos_spec(load=1.0, boundary_capacity=3, link_delay=1)
        shard = FabricShard(spec)
        for slot in range(200):
            shard._slot(slot)
            for (stage, _), switch in shard.switches.items():
                if stage > 0:
                    for pq in switch.pqs:
                        assert len(pq) <= spec.boundary_capacity


class TestBackpressure:
    def test_tight_boundary_throttles_throughput(self):
        roomy = run_fabric(clos_spec(boundary_capacity=64))
        tight = run_fabric(clos_spec(boundary_capacity=1, link_delay=3))
        assert tight.backpressure_slots > 0
        assert roomy.backpressure_slots == 0
        assert tight.forwarded < roomy.forwarded

    def test_blocked_grants_stay_zero_for_honest_schedulers(self):
        # The credit gate masks requests *before* scheduling, so the
        # defensive post-schedule counter never fires.
        result = run_fabric(clos_spec(boundary_capacity=1, load=1.0))
        assert result.blocked_grants == 0


class TestRouting:
    @pytest.mark.parametrize("routing", ["hash", "least_loaded", "offline"])
    def test_policies_deliver(self, routing):
        result = run_fabric(clos_spec(routing=routing))
        assert result.forwarded > 0
        assert result.throughput > 0.5

    def test_offline_uses_precomputed_routing(self):
        network = ClosNetwork(m=4, k=4, r=4)
        table = network.route(np.arange(16, dtype=np.int64))
        result = run_fabric(
            clos_spec(routing="offline", traffic="permutation"),
            offline_routing=table,
        )
        assert result.forwarded > 0

    def test_routing_changes_the_sample_path(self):
        hashed = run_fabric(clos_spec(routing="hash"))
        balanced = run_fabric(clos_spec(routing="least_loaded"))
        assert hashed.stage_forwards != balanced.stage_forwards


class TestFaultsAndAdaptation:
    def test_per_switch_fault_plan_fires(self):
        spec = clos_spec(
            stage_faults=((1, 0, (("port_down", ((0, 60, 120, "output"),)),)),),
        )
        result = run_fabric(spec)
        assert result.fault_events == 1
        assert result.recovery_events >= 1
        assert result.degraded_slots == 60

    def test_adapter_composes_per_switch(self):
        spec = clos_spec(
            stage_faults=((1, 0, (("port_down", ((0, 60, 300, "output"),)),)),),
            stage_adapt=((1, 0, (("policy", "adaptive"),)),),
        )
        result = run_fabric(spec)
        # Fault-blind stage switch: the fabric gate eats grants the
        # adapter proposed over the dead output.
        assert result.masked_grants > 0


class TestObservability:
    def test_trace_events_carry_switch_labels_and_validate(self):
        tracer = RingTracer(1 << 18)
        run_fabric(clos_spec(), tracer=tracer)
        events = tracer.events
        assert events
        labels = {event["switch"] for event in events}
        assert "s0.0" in labels and "s1.0" in labels and "s2.3" in labels
        for event in events[:2000]:
            assert validate_event(event) == []

    def test_trace_is_slot_ordered(self):
        tracer = RingTracer(1 << 18)
        run_fabric(clos_spec(), tracer=tracer)
        slots = [event["slot"] for event in tracer.events]
        assert slots == sorted(slots)

    def test_metrics_gauges_exported(self):
        registry = MetricsRegistry()
        run_fabric(clos_spec(), metrics=registry)
        snapshot = registry.snapshot()
        for name in (
            "stage0_queued", "stage1_queued", "stage2_queued",
            "stage0_credits", "fabric_generated", "fabric_delivered",
        ):
            assert name in snapshot
        assert snapshot["fabric_generated"] >= snapshot["fabric_delivered"]

    def test_sharded_metrics_rejected(self):
        with pytest.raises(ValueError, match="single-shard"):
            run_fabric(clos_spec(), shards=2, metrics=MetricsRegistry())

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_fabric(clos_spec(), backend="carrier-pigeon")

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            run_fabric(clos_spec(), shards=0)


class TestResultSurface:
    def test_row_is_flat_and_csv_ready(self):
        result = run_fabric(clos_spec(), collect_percentiles=True)
        row = result.row()
        assert row["topology"].startswith("C(4,4,4)")
        assert 0 <= row["loss_rate"] <= 1
        assert "p99" in row

    def test_flow_matrices_account_for_every_delivery(self):
        result = run_fabric(clos_spec(), collect_flows=True)
        assert int(result.flow_counts.sum()) == result.forwarded
        means = result.flow_mean_delay()
        served = result.flow_counts > 0
        assert np.all(means[served] >= 1)

    def test_fast_engine_is_bit_identical(self):
        reference = run_fabric(clos_spec())
        fast = run_fabric(clos_spec(), fast=True)
        assert reference.mean_latency == fast.mean_latency
        assert reference.stage_forwards == fast.stage_forwards
