"""Clint sub-slot timing: the paper's Section 1 / Table 2 numbers."""

import pytest

from repro.des.clint_timing import BulkChannelTiming, ClintTimingParams


class TestPublishedNumbers:
    def test_scheduling_time_is_1258_ns(self):
        params = ClintTimingParams()
        assert params.precalc_check_ns == 500
        assert params.lcf_calc_ns == 758
        assert params.scheduling_ns == 1258  # the paper's "1.3 us"

    def test_scheduling_fits_the_slot_with_headroom(self):
        model = BulkChannelTiming()
        utilisation = model.scheduler_utilisation()
        assert utilisation == pytest.approx(1258 / 8500, rel=1e-6)
        assert utilisation < 0.16  # ~15% — the pipeline's slack

    def test_slot_carries_a_2kb_packet(self):
        params = ClintTimingParams()
        assert params.bulk_packet_bits == pytest.approx(17000)  # ~2.1 kB

    def test_max_reschedule_rate(self):
        # If the slot shrank to the scheduling time alone, the switch
        # could re-schedule at ~0.8 MHz.
        model = BulkChannelTiming()
        assert model.max_reschedule_rate_mhz() == pytest.approx(1000 / 1258, rel=1e-6)


class TestEventChain:
    @pytest.fixture(scope="class")
    def records(self):
        return BulkChannelTiming().simulate(slots=5)

    def test_cfg_before_precalc_before_schedule(self, records):
        for record in records:
            assert record.slot_start < record.cfg_received
            assert record.cfg_received < record.precalc_done
            assert record.precalc_done < record.schedule_done
            assert record.schedule_done < record.gnt_delivered

    def test_grant_well_before_slot_end(self, records):
        params = ClintTimingParams()
        for record in records:
            assert record.gnt_delivered < record.slot_start + 0.25 * params.slot_ns

    def test_transfer_occupies_the_following_slot(self, records):
        params = ClintTimingParams()
        for record in records[:-1]:
            assert record.transfer_start == pytest.approx(
                record.slot_start + params.slot_ns
            )
            assert record.transfer_end == pytest.approx(
                record.transfer_start + params.slot_ns
            )

    def test_ack_arrives_after_transfer(self, records):
        for record in records[:-1]:
            assert record.ack_delivered > record.transfer_end - 1e-9

    def test_scheduling_latency_constant_across_slots(self, records):
        latencies = {round(r.scheduling_latency, 3) for r in records}
        assert len(latencies) == 1

    def test_pipeline_overlap(self, records):
        """While slot k's packets are in transfer, slot k+1's schedule is
        being computed — the Figure 5 overlap."""
        first, second = records[0], records[1]
        assert second.schedule_done < first.transfer_end
        assert second.slot_start <= first.transfer_start
