"""Discrete-event kernel."""

import pytest

from repro.des.kernel import EventScheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        kernel = EventScheduler()
        log = []
        kernel.schedule_at(5.0, log.append, "b")
        kernel.schedule_at(1.0, log.append, "a")
        kernel.schedule_at(9.0, log.append, "c")
        kernel.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_are_fifo(self):
        kernel = EventScheduler()
        log = []
        for tag in ("first", "second", "third"):
            kernel.schedule_at(3.0, log.append, tag)
        kernel.run()
        assert log == ["first", "second", "third"]

    def test_now_advances_with_events(self):
        kernel = EventScheduler()
        seen = []
        kernel.schedule_at(2.5, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [2.5]
        assert kernel.now == 2.5

    def test_schedule_after_is_relative(self):
        kernel = EventScheduler(start_time=10.0)
        seen = []
        kernel.schedule_after(5.0, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [15.0]

    def test_past_scheduling_rejected(self):
        kernel = EventScheduler(start_time=10.0)
        with pytest.raises(ValueError):
            kernel.schedule_at(9.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_after(-1.0, lambda: None)


class TestExecution:
    def test_handlers_can_chain_events(self):
        kernel = EventScheduler()
        log = []

        def ping():
            log.append(kernel.now)
            if kernel.now < 3:
                kernel.schedule_after(1.0, ping)

        kernel.schedule_at(0.0, ping)
        kernel.run()
        assert log == [0.0, 1.0, 2.0, 3.0]

    def test_same_time_chaining_runs_this_pass(self):
        kernel = EventScheduler()
        log = []
        kernel.schedule_at(1.0, lambda: kernel.schedule_after(0.0, log.append, "x"))
        kernel.run()
        assert log == ["x"]

    def test_run_until_leaves_future_events(self):
        kernel = EventScheduler()
        log = []
        kernel.schedule_at(1.0, log.append, "early")
        kernel.schedule_at(10.0, log.append, "late")
        kernel.run_until(5.0)
        assert log == ["early"]
        assert kernel.now == 5.0
        assert len(kernel) == 1

    def test_max_events_bound(self):
        kernel = EventScheduler()

        def forever():
            kernel.schedule_after(1.0, forever)

        kernel.schedule_at(0.0, forever)
        executed = kernel.run(max_events=50)
        assert executed == 50

    def test_step_on_empty_queue(self):
        assert not EventScheduler().step()

    def test_event_counter(self):
        kernel = EventScheduler()
        for t in range(5):
            kernel.schedule_at(float(t), lambda: None)
        kernel.run()
        assert kernel.events_executed == 5
