"""Greedy and random maximal matchers (yardstick baselines)."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.maximal_greedy import GreedyMaximal
from repro.baselines.random_sched import RandomMaximal
from repro.matching.verify import is_maximal, is_valid_schedule

from tests.conftest import request_matrices


class TestGreedy:
    def test_rotating_start_input(self):
        requests = np.zeros((2, 2), dtype=bool)
        requests[0, 0] = requests[1, 0] = True
        scheduler = GreedyMaximal(2)
        first = scheduler.schedule(requests)
        second = scheduler.schedule(requests)
        assert first[0] == 0 and second[1] == 0  # winner rotates

    @given(request_matrices(max_n=6))
    @settings(max_examples=50, deadline=None)
    def test_always_valid_and_maximal(self, requests):
        scheduler = GreedyMaximal(requests.shape[0])
        schedule = scheduler.schedule(requests)
        assert is_valid_schedule(requests, schedule)
        assert is_maximal(requests, schedule)

    def test_reset(self):
        scheduler = GreedyMaximal(3)
        scheduler.schedule(np.zeros((3, 3), dtype=bool))
        scheduler.reset()
        assert scheduler._offset == 0


class TestRandom:
    def test_seeded_reproducibility(self):
        requests = np.ones((5, 5), dtype=bool)
        a, b = RandomMaximal(5, seed=1), RandomMaximal(5, seed=1)
        for _ in range(5):
            assert (a.schedule(requests) == b.schedule(requests)).all()

    def test_reset_rewinds(self):
        requests = np.ones((5, 5), dtype=bool)
        scheduler = RandomMaximal(5, seed=2)
        first = scheduler.schedule(requests).tolist()
        scheduler.reset()
        assert scheduler.schedule(requests).tolist() == first

    @given(request_matrices(max_n=6))
    @settings(max_examples=50, deadline=None)
    def test_always_valid_and_maximal(self, requests):
        scheduler = RandomMaximal(requests.shape[0])
        schedule = scheduler.schedule(requests)
        assert is_valid_schedule(requests, schedule)
        assert is_maximal(requests, schedule)

    def test_varies_across_cycles(self):
        requests = np.ones((6, 6), dtype=bool)
        scheduler = RandomMaximal(6, seed=0)
        outcomes = {tuple(scheduler.schedule(requests).tolist()) for _ in range(10)}
        assert len(outcomes) > 1
