"""Scheduler registry."""

import numpy as np
import pytest

from repro.baselines.registry import (
    ITERATIVE_NAMES,
    PAPER_SCHEDULERS,
    SPECIAL_SWITCH_NAMES,
    available_schedulers,
    make_scheduler,
)
from repro.matching.verify import is_valid_schedule


class TestRegistry:
    def test_all_registered_names_construct(self):
        for name in available_schedulers():
            scheduler = make_scheduler(name, 4)
            assert scheduler.n == 4

    def test_unknown_name_raises_keyerror_with_listing(self):
        with pytest.raises(KeyError, match="lcf_central"):
            make_scheduler("nope", 4)

    def test_iterations_forwarded_to_iterative_schedulers(self):
        for name in ITERATIVE_NAMES:
            scheduler = make_scheduler(name, 4, iterations=2)
            assert scheduler.iterations == 2

    def test_iterations_ignored_by_others(self):
        scheduler = make_scheduler("wfront", 4, iterations=7)
        assert scheduler.n == 4

    def test_paper_scheduler_list_covers_figure12_legend(self):
        assert set(PAPER_SCHEDULERS) == {
            "lcf_central",
            "lcf_central_rr",
            "lcf_dist_rr",
            "lcf_dist",
            "pim",
            "islip",
            "wfront",
            "fifo",
            "outbuf",
        }

    def test_special_switch_names(self):
        assert SPECIAL_SWITCH_NAMES == {"fifo", "outbuf"}
        assert "outbuf" not in available_schedulers()

    def test_registry_schedulers_produce_valid_schedules(self):
        rng = np.random.default_rng(1)
        requests = rng.random((5, 5)) < 0.5
        for name in available_schedulers():
            if name == "fifo":
                continue  # needs HOL-shaped input
            scheduler = make_scheduler(name, 5)
            assert is_valid_schedule(requests, scheduler.schedule(requests)), name

    def test_seed_forwarded_to_random_schedulers(self):
        a = make_scheduler("pim", 4, seed=7)
        b = make_scheduler("pim", 4, seed=7)
        requests = np.ones((4, 4), dtype=bool)
        assert (a.schedule(requests) == b.schedule(requests)).all()
