"""FIFO head-of-line scheduler."""

import numpy as np
import pytest

from repro.baselines.fifo import FIFOScheduler
from repro.types import NO_GRANT


class TestHOLScheduling:
    def test_uncontended_heads_all_granted(self):
        scheduler = FIFOScheduler(3)
        schedule = scheduler.schedule_hol(np.array([2, 0, 1]))
        assert schedule.tolist() == [2, 0, 1]

    def test_contention_grants_one(self):
        scheduler = FIFOScheduler(3)
        schedule = scheduler.schedule_hol(np.array([0, 0, 0]))
        assert (schedule != NO_GRANT).sum() == 1

    def test_round_robin_rotates_winner(self):
        scheduler = FIFOScheduler(2)
        winners = []
        for _ in range(4):
            schedule = scheduler.schedule_hol(np.array([1, 1]))
            winners.append(int(np.flatnonzero(schedule != NO_GRANT)[0]))
        assert winners == [0, 1, 0, 1]

    def test_empty_inputs_ignored(self):
        scheduler = FIFOScheduler(3)
        schedule = scheduler.schedule_hol(np.array([NO_GRANT, 1, NO_GRANT]))
        assert schedule.tolist() == [NO_GRANT, 1, NO_GRANT]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            FIFOScheduler(3).schedule_hol(np.array([0, 1]))

    def test_reset_restores_offset(self):
        scheduler = FIFOScheduler(2)
        scheduler.schedule_hol(np.array([1, 1]))
        scheduler.reset()
        schedule = scheduler.schedule_hol(np.array([1, 1]))
        assert schedule[0] == 1  # offset back at 0: input 0 wins


class TestMatrixAPI:
    def test_single_request_rows_accepted(self):
        requests = np.zeros((3, 3), dtype=bool)
        requests[0, 2] = requests[2, 1] = True
        schedule = FIFOScheduler(3).schedule(requests)
        assert schedule[0] == 2 and schedule[2] == 1

    def test_multi_request_row_rejected(self):
        requests = np.zeros((3, 3), dtype=bool)
        requests[0, 0] = requests[0, 1] = True
        with pytest.raises(ValueError):
            FIFOScheduler(3).schedule(requests)

    def test_hol_blocking_is_structural(self):
        # Two heads fight for output 0 while output 1 sits idle — the
        # defining FIFO pathology: only one packet moves.
        scheduler = FIFOScheduler(2)
        schedule = scheduler.schedule_hol(np.array([0, 0]))
        assert (schedule != NO_GRANT).sum() == 1
