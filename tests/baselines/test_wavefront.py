"""Wrapped wave front arbiter."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.wavefront import WrappedWaveFront
from repro.matching.verify import is_maximal, is_valid_schedule, matching_size
from repro.types import NO_GRANT

from tests.conftest import request_matrices


class TestWaveOrder:
    def test_first_diagonal_has_priority(self):
        # Offset 0: diagonal (i + j) % n == 0 goes first. Both (0,0) and
        # (1,0) requested: (0,0) is on wave 0 and must win output 0.
        requests = np.zeros((3, 3), dtype=bool)
        requests[0, 0] = requests[1, 0] = True
        schedule = WrappedWaveFront(3).schedule(requests)
        assert schedule[0] == 0
        assert schedule[1] == NO_GRANT

    def test_offset_rotates_each_cycle(self):
        scheduler = WrappedWaveFront(3)
        assert scheduler.offset == 0
        scheduler.schedule(np.zeros((3, 3), dtype=bool))
        assert scheduler.offset == 1
        for _ in range(2):
            scheduler.schedule(np.zeros((3, 3), dtype=bool))
        assert scheduler.offset == 0

    def test_rotation_moves_the_winner(self):
        requests = np.zeros((2, 2), dtype=bool)
        requests[0, 0] = requests[1, 0] = True
        scheduler = WrappedWaveFront(2)
        winners = set()
        for _ in range(2):
            schedule = scheduler.schedule(requests)
            winners.add(int(np.flatnonzero(schedule != NO_GRANT)[0]))
        assert winners == {0, 1}

    def test_reset(self):
        scheduler = WrappedWaveFront(4)
        scheduler.schedule(np.zeros((4, 4), dtype=bool))
        scheduler.reset()
        assert scheduler.offset == 0


class TestWaveIndependence:
    def test_wave_cells_have_distinct_rows_and_columns(self):
        # The wrapped diagonal covers each row and column exactly once —
        # grants on one wave can never conflict.
        n = 5
        for diag in range(n):
            rows = np.arange(n)
            cols = (diag - rows) % n
            assert len(set(cols.tolist())) == n

    def test_full_matrix_perfect_matching(self):
        n = 6
        schedule = WrappedWaveFront(n).schedule(np.ones((n, n), dtype=bool))
        assert matching_size(schedule) == n

    def test_diagonal_requests_all_granted_in_wave(self):
        n = 4
        requests = np.zeros((n, n), dtype=bool)
        for i in range(n):
            requests[i, (0 - i) % n] = True  # all on wave 0
        schedule = WrappedWaveFront(n).schedule(requests)
        assert matching_size(schedule) == n


class TestProperties:
    @given(request_matrices(max_n=7))
    @settings(max_examples=50, deadline=None)
    def test_schedule_always_valid(self, requests):
        scheduler = WrappedWaveFront(requests.shape[0])
        assert is_valid_schedule(requests, scheduler.schedule(requests))

    @given(request_matrices(max_n=7))
    @settings(max_examples=50, deadline=None)
    def test_schedule_always_maximal(self, requests):
        # Every cell is examined exactly once per cycle, so the result
        # is always a maximal matching.
        scheduler = WrappedWaveFront(requests.shape[0])
        assert is_maximal(requests, scheduler.schedule(requests))
