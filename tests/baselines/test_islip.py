"""iSLIP baseline: pointer discipline and desynchronisation."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.islip import ISLIP, _next_at_or_after
from repro.matching.verify import is_maximal, is_valid_schedule, matching_size
from repro.types import NO_GRANT

from tests.conftest import request_matrices


class TestNextAtOrAfter:
    def test_picks_start_when_set(self):
        assert _next_at_or_after(np.array([True, True, False]), 1) == 1

    def test_wraps_around(self):
        assert _next_at_or_after(np.array([True, False, False]), 2) == 0

    def test_raises_when_empty(self):
        import pytest

        with pytest.raises(ValueError):
            _next_at_or_after(np.array([False, False]), 0)


class TestPointerDiscipline:
    def test_pointers_start_at_zero(self):
        grant, accept = ISLIP(4).pointers
        assert (grant == 0).all() and (accept == 0).all()

    def test_pointer_advances_past_match(self):
        scheduler = ISLIP(4, iterations=1)
        requests = np.zeros((4, 4), dtype=bool)
        requests[2, 1] = True
        scheduler.schedule(requests)
        grant, accept = scheduler.pointers
        assert grant[1] == 3  # one beyond input 2
        assert accept[2] == 2  # one beyond output 1

    def test_pointer_not_advanced_without_match(self):
        scheduler = ISLIP(4)
        scheduler.schedule(np.zeros((4, 4), dtype=bool))
        grant, accept = scheduler.pointers
        assert (grant == 0).all() and (accept == 0).all()

    def test_second_iteration_match_leaves_pointers(self):
        # Craft a matrix where a match can only happen in iteration 2:
        # I0 requests T0,T1; I1 requests T0. Iteration 1: both outputs'
        # pointers at 0 -> T0 grants I0, T1 grants I0, I0 accepts T0;
        # iteration 2: I1 gets... I1 only requests T0 (taken), so use
        # I1 -> T0, T1: iteration 1: T0 grants I0, T1 grants I0 (ptr 0),
        # I0 accepts T0. Iteration 2: I1 matched with T1.
        scheduler = ISLIP(2, iterations=2)
        requests = np.array([[True, True], [True, True]])
        schedule = scheduler.schedule(requests)
        assert matching_size(schedule) == 2
        grant, accept = scheduler.pointers
        # Only the first-iteration match (I0, T0) moved pointers.
        assert grant[0] == 1 and accept[0] == 1
        assert grant[1] == 0 and accept[1] == 0

    def test_reset_clears_pointers(self):
        scheduler = ISLIP(4)
        requests = np.ones((4, 4), dtype=bool)
        scheduler.schedule(requests)
        scheduler.reset()
        grant, accept = scheduler.pointers
        assert (grant == 0).all() and (accept == 0).all()


class TestDesynchronisation:
    def test_full_load_reaches_full_throughput(self):
        """The signature iSLIP property: under saturation the grant
        pointers desynchronise and the switch sustains one packet per
        output per slot (100% throughput) after a short transient."""
        n = 8
        scheduler = ISLIP(n, iterations=1)
        requests = np.ones((n, n), dtype=bool)
        for _ in range(4 * n):  # transient
            scheduler.schedule(requests)
        for _ in range(20):
            assert matching_size(scheduler.schedule(requests)) == n

    def test_saturated_service_is_fair(self):
        n = 4
        scheduler = ISLIP(n, iterations=1)
        requests = np.ones((n, n), dtype=bool)
        counts = np.zeros((n, n))
        for _ in range(400):
            schedule = scheduler.schedule(requests)
            for i, j in enumerate(schedule):
                if j != NO_GRANT:
                    counts[i, j] += 1
        # Every pair gets close to 1/n of each output.
        assert counts.min() > 0.5 * 400 / n / n


class TestProperties:
    @given(request_matrices(max_n=6))
    @settings(max_examples=50, deadline=None)
    def test_schedule_always_valid(self, requests):
        scheduler = ISLIP(requests.shape[0])
        assert is_valid_schedule(requests, scheduler.schedule(requests))

    @given(request_matrices(min_n=2, max_n=5))
    @settings(max_examples=30, deadline=None)
    def test_n_iterations_reach_maximal(self, requests):
        n = requests.shape[0]
        scheduler = ISLIP(n, iterations=n)
        assert is_maximal(requests, scheduler.schedule(requests))
