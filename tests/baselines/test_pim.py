"""Parallel Iterative Matching baseline."""

import numpy as np
from hypothesis import given, settings

from repro.baselines.pim import PIM
from repro.matching.verify import is_maximal, is_valid_schedule, matching_size
from repro.types import NO_GRANT

from tests.conftest import request_matrices


class TestBasics:
    def test_permutation_matched_in_one_iteration(self):
        schedule = PIM(4, iterations=1).schedule(np.eye(4, dtype=bool))
        assert schedule.tolist() == [0, 1, 2, 3]

    def test_empty_matrix(self):
        assert (PIM(4).schedule(np.zeros((4, 4), dtype=bool)) == NO_GRANT).all()

    def test_single_contended_output(self):
        requests = np.zeros((4, 4), dtype=bool)
        requests[:, 0] = True
        schedule = PIM(4).schedule(requests)
        assert matching_size(schedule) == 1

    def test_seeded_reproducibility(self):
        rng = np.random.default_rng(0)
        requests = rng.random((6, 6)) < 0.5
        a = PIM(6, seed=42)
        b = PIM(6, seed=42)
        for _ in range(5):
            assert (a.schedule(requests) == b.schedule(requests)).all()

    def test_reset_rewinds_random_stream(self):
        requests = np.ones((6, 6), dtype=bool)
        scheduler = PIM(6, seed=9)
        first = [scheduler.schedule(requests).tolist() for _ in range(3)]
        scheduler.reset()
        second = [scheduler.schedule(requests).tolist() for _ in range(3)]
        assert first == second

    def test_different_seeds_differ(self):
        requests = np.ones((8, 8), dtype=bool)
        a = [PIM(8, seed=1).schedule(requests).tolist() for _ in range(1)]
        b = [PIM(8, seed=2).schedule(requests).tolist() for _ in range(1)]
        assert a != b


class TestRandomisation:
    def test_grant_choice_is_uniformish(self):
        # Two inputs contending for one output should win about equally
        # often over many cycles.
        requests = np.zeros((2, 2), dtype=bool)
        requests[0, 0] = requests[1, 0] = True
        scheduler = PIM(2, iterations=1, seed=3)
        wins = [0, 0]
        for _ in range(400):
            schedule = scheduler.schedule(requests)
            winner = int(np.flatnonzero(schedule != NO_GRANT)[0])
            wins[winner] += 1
        assert 120 < wins[0] < 280

    def test_convergence_improves_with_iterations(self):
        rng = np.random.default_rng(11)
        sizes_1, sizes_4 = 0, 0
        one = PIM(8, iterations=1, seed=5)
        four = PIM(8, iterations=4, seed=5)
        for _ in range(100):
            requests = rng.random((8, 8)) < 0.6
            sizes_1 += matching_size(one.schedule(requests))
            sizes_4 += matching_size(four.schedule(requests))
        assert sizes_4 > sizes_1


class TestProperties:
    @given(request_matrices(max_n=6))
    @settings(max_examples=50, deadline=None)
    def test_schedule_always_valid(self, requests):
        scheduler = PIM(requests.shape[0])
        assert is_valid_schedule(requests, scheduler.schedule(requests))

    @given(request_matrices(min_n=2, max_n=5))
    @settings(max_examples=30, deadline=None)
    def test_many_iterations_reach_maximal(self, requests):
        n = requests.shape[0]
        # n iterations guarantee convergence: every iteration with live
        # requests commits at least one match.
        scheduler = PIM(n, iterations=n)
        assert is_maximal(requests, scheduler.schedule(requests))
