"""Weight-based schedulers: LQF and OCF."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.weighted import LQF, OCF, WeightedScheduler
from repro.matching.verify import is_maximal, is_valid_schedule
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation

from tests.conftest import request_matrices


class TestScheduleWeighted:
    def test_highest_weight_wins(self):
        weights = np.zeros((3, 3), dtype=np.int64)
        weights[0, 0] = 5
        weights[1, 0] = 2
        schedule = LQF(3).schedule_weighted(weights)
        assert schedule[0] == 0
        assert schedule[1] == -1

    def test_ties_broken_by_rotating_chain(self):
        weights = np.zeros((2, 2), dtype=np.int64)
        weights[0, 0] = weights[1, 0] = 3
        scheduler = LQF(2)
        winners = []
        for _ in range(4):
            schedule = scheduler.schedule_weighted(weights)
            winners.append(int(np.flatnonzero(schedule >= 0)[0]))
        assert set(winners) == {0, 1}

    def test_zero_weight_means_no_request(self):
        weights = np.zeros((2, 2), dtype=np.int64)
        schedule = LQF(2).schedule_weighted(weights)
        assert (schedule == -1).all()

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            LQF(3).schedule_weighted(np.zeros((2, 2)))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            LQF(2).schedule_weighted(np.array([[-1, 0], [0, 0]]))

    def test_boolean_fallback_is_greedy_maximal(self):
        rng = np.random.default_rng(0)
        scheduler = LQF(5)
        for _ in range(20):
            requests = rng.random((5, 5)) < 0.5
            schedule = scheduler.schedule(requests)
            assert is_valid_schedule(requests, schedule)
            assert is_maximal(requests, schedule)

    @given(request_matrices(max_n=6))
    @settings(max_examples=40, deadline=None)
    def test_weighted_schedule_respects_support(self, requests):
        weights = requests.astype(np.int64) * 7
        schedule = OCF(requests.shape[0]).schedule_weighted(weights)
        assert is_valid_schedule(requests, schedule)

    def test_weight_kinds(self):
        assert LQF(2).weight_kind == "occupancy"
        assert OCF(2).weight_kind == "hol_age"
        assert issubclass(LQF, WeightedScheduler)


class TestInSimulator:
    CONFIG = SimConfig(n_ports=8, voq_capacity=64, pq_capacity=200,
                       warmup_slots=300, measure_slots=2000)

    def test_lqf_carries_moderate_load(self):
        result = run_simulation(self.CONFIG, "lqf", 0.7)
        assert result.throughput == pytest.approx(0.7, abs=0.05)

    def test_ocf_carries_moderate_load(self):
        result = run_simulation(self.CONFIG, "ocf", 0.7)
        assert result.throughput == pytest.approx(0.7, abs=0.05)

    def test_lqf_competitive_at_high_load(self):
        lqf = run_simulation(self.CONFIG, "lqf", 0.9)
        wfront = run_simulation(self.CONFIG, "wfront", 0.9)
        assert lqf.mean_latency < 1.5 * wfront.mean_latency

    def test_ocf_bounds_the_tail(self):
        """OCF's whole point: serving the oldest cell first keeps the
        maximum delay tighter than choice-count priorities do."""
        ocf = run_simulation(self.CONFIG, "ocf", 0.9)
        lcf = run_simulation(self.CONFIG, "lcf_central", 0.9)
        assert ocf.max_latency <= lcf.max_latency
