"""Nonuniform traffic patterns."""

import numpy as np
import pytest

from repro.traffic.base import NO_ARRIVAL
from repro.traffic.nonuniform import Diagonal, Hotspot, LogDiagonal, Permutation


class TestHotspot:
    def test_fraction_one_is_single_destination(self):
        pattern = Hotspot(4, 1.0, seed=1, hotspot=2, fraction=1.0)
        for _ in range(20):
            dst = pattern.arrivals()
            assert (dst == 2).all()

    def test_hot_output_receives_extra_traffic(self):
        pattern = Hotspot(8, 1.0, seed=2, hotspot=0, fraction=0.5)
        counts = np.zeros(8)
        for _ in range(2000):
            for dst in pattern.arrivals():
                counts[dst] += 1
        assert counts[0] > 3 * counts[1:].mean()

    def test_rate_matrix_sums_to_load(self):
        pattern = Hotspot(4, 0.6, seed=3, fraction=0.3)
        assert pattern.rate_matrix().sum(axis=1) == pytest.approx(np.full(4, 0.6))

    def test_invalid_hotspot_rejected(self):
        with pytest.raises(ValueError):
            Hotspot(4, 0.5, hotspot=4)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            Hotspot(4, 0.5, fraction=1.5)


class TestDiagonal:
    def test_destinations_limited_to_two(self):
        pattern = Diagonal(4, 1.0, seed=4)
        for _ in range(50):
            dst = pattern.arrivals()
            for i in range(4):
                assert dst[i] in (i, (i + 1) % 4)

    def test_two_thirds_one_third_split(self):
        pattern = Diagonal(4, 1.0, seed=5)
        own = 0
        total = 0
        for _ in range(3000):
            dst = pattern.arrivals()
            own += int((dst == np.arange(4)).sum())
            total += 4
        assert own / total == pytest.approx(2 / 3, abs=0.03)

    def test_rate_matrix(self):
        rate = Diagonal(4, 0.9, seed=6).rate_matrix()
        assert rate[0, 0] == pytest.approx(0.6)
        assert rate[0, 1] == pytest.approx(0.3)
        assert rate.sum() == pytest.approx(4 * 0.9)


class TestLogDiagonal:
    def test_rate_decays_geometrically(self):
        rate = LogDiagonal(8, 1.0, seed=7).rate_matrix()
        assert rate[0, 0] > rate[0, 1] > rate[0, 2]
        assert rate[0, 0] / rate[0, 1] == pytest.approx(2.0, rel=0.01)

    def test_row_sums_equal_load(self):
        rate = LogDiagonal(8, 0.5, seed=8).rate_matrix()
        assert rate.sum(axis=1) == pytest.approx(np.full(8, 0.5))

    def test_empirical_skew(self):
        pattern = LogDiagonal(4, 1.0, seed=9)
        own = sum(
            int((pattern.arrivals() == np.arange(4)).sum()) for _ in range(2000)
        )
        assert own / 8000 == pytest.approx(8 / 15, abs=0.04)  # 2^0/(2^0+..+2^-3)


class TestPermutation:
    def test_fixed_destinations(self):
        perm = np.array([2, 3, 0, 1])
        pattern = Permutation(4, 1.0, seed=10, permutation=perm)
        for _ in range(20):
            assert (pattern.arrivals() == perm).all()

    def test_default_permutation_is_valid(self):
        pattern = Permutation(6, 1.0, seed=11)
        assert sorted(pattern.permutation.tolist()) == list(range(6))

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            Permutation(3, 0.5, permutation=np.array([0, 0, 1]))

    def test_contention_free_rate_matrix(self):
        pattern = Permutation(4, 0.8, seed=12)
        rate = pattern.rate_matrix()
        assert rate.sum(axis=0) == pytest.approx(np.full(4, 0.8))
        assert rate.sum(axis=1) == pytest.approx(np.full(4, 0.8))
