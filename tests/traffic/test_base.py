"""Traffic pattern base class."""

import numpy as np
import pytest

from repro.traffic.base import NO_ARRIVAL, TrafficPattern


class _TwoDestinations(TrafficPattern):
    """Minimal pattern exercising the base-class empirical rate matrix:
    always sends, alternating deterministically between two outputs."""

    name = "_test_two"

    def arrivals(self) -> np.ndarray:
        dst = self.rng.integers(0, 2, size=self.n)  # outputs 0 or 1 only
        return dst.astype(np.int64)


class TestBaseValidation:
    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            _TwoDestinations(4, 1.5)

    def test_invalid_ports_rejected(self):
        with pytest.raises(ValueError):
            _TwoDestinations(0, 0.5)


class TestEmpiricalRateMatrix:
    def test_estimates_only_used_destinations(self):
        pattern = _TwoDestinations(4, 1.0, seed=3)
        rate = pattern.rate_matrix()
        # Columns 2 and 3 never receive traffic.
        assert rate[:, 2:].sum() == 0.0
        # Each input sends one packet per slot, split between 0 and 1.
        assert rate.sum(axis=1) == pytest.approx(np.ones(4), abs=0.02)

    def test_estimation_does_not_disturb_the_stream(self):
        a = _TwoDestinations(4, 1.0, seed=9)
        b = _TwoDestinations(4, 1.0, seed=9)
        a.rate_matrix()  # must save/restore the RNG state
        for _ in range(10):
            assert (a.arrivals() == b.arrivals()).all()


class TestReset:
    def test_reset_restores_construction_stream(self):
        pattern = _TwoDestinations(4, 1.0, seed=5)
        first = [pattern.arrivals().tolist() for _ in range(5)]
        pattern.reset()
        assert [pattern.arrivals().tolist() for _ in range(5)] == first
