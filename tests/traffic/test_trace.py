"""Trace recording and replay."""

import numpy as np
import pytest

from repro.traffic.base import NO_ARRIVAL, available_patterns, make_traffic
from repro.traffic.bernoulli import BernoulliUniform
from repro.traffic.trace import TraceReplay, record_trace


class TestTraceReplay:
    def test_replays_exactly(self):
        trace = np.array([[0, -1], [1, 0], [-1, -1]], dtype=np.int64)
        pattern = TraceReplay(trace)
        assert pattern.arrivals().tolist() == [0, -1]
        assert pattern.arrivals().tolist() == [1, 0]
        assert pattern.arrivals().tolist() == [-1, -1]

    def test_wraps_by_default(self):
        trace = np.array([[1, 0]], dtype=np.int64)
        pattern = TraceReplay(trace)
        pattern.arrivals()
        assert pattern.arrivals().tolist() == [1, 0]

    def test_no_wrap_returns_silence(self):
        trace = np.array([[1, 0]], dtype=np.int64)
        pattern = TraceReplay(trace, wrap=False)
        pattern.arrivals()
        assert (pattern.arrivals() == NO_ARRIVAL).all()

    def test_reset_rewinds(self):
        trace = np.array([[0, 1], [1, 0]], dtype=np.int64)
        pattern = TraceReplay(trace)
        pattern.arrivals()
        pattern.reset()
        assert pattern.arrivals().tolist() == [0, 1]

    def test_out_of_range_destination_rejected(self):
        with pytest.raises(ValueError):
            TraceReplay(np.array([[5, 0]], dtype=np.int64))

    def test_load_estimated_from_trace(self):
        trace = np.array([[0, -1], [-1, -1]], dtype=np.int64)
        assert TraceReplay(trace).load == pytest.approx(0.25)

    def test_rate_matrix_from_trace(self):
        trace = np.array([[1, -1], [1, -1]], dtype=np.int64)
        rate = TraceReplay(trace).rate_matrix()
        assert rate[0, 1] == pytest.approx(1.0)
        assert rate.sum() == pytest.approx(1.0)


class TestRecordTrace:
    def test_record_then_replay_is_identical(self):
        source = BernoulliUniform(4, 0.5, seed=9)
        trace = record_trace(source, 50)
        source.reset()
        replay = TraceReplay(trace)
        for _ in range(50):
            assert (source.arrivals() == replay.arrivals()).all()


class TestRegistry:
    def test_all_patterns_constructible(self):
        for name in available_patterns():
            pattern = make_traffic(name, 4, 0.5, seed=1)
            dst = pattern.arrivals()
            assert dst.shape == (4,)

    def test_unknown_pattern_raises(self):
        with pytest.raises(KeyError):
            make_traffic("nope", 4, 0.5)

    def test_kwargs_forwarded(self):
        pattern = make_traffic("hotspot", 4, 0.5, hotspot=3, fraction=1.0)
        assert pattern.hotspot == 3
