"""Bursty on/off traffic."""

import numpy as np
import pytest

from repro.traffic.base import NO_ARRIVAL
from repro.traffic.bursty import BurstyOnOff


def burst_lengths(pattern, slots, port=0):
    """Observed on-period lengths for one input."""
    lengths = []
    current = 0
    for _ in range(slots):
        active = pattern.arrivals()[port] != NO_ARRIVAL
        if active:
            current += 1
        elif current:
            lengths.append(current)
            current = 0
    return lengths


class TestBursty:
    def test_long_run_load(self):
        pattern = BurstyOnOff(4, 0.5, seed=1, mean_burst=8)
        hits = sum((pattern.arrivals() != NO_ARRIVAL).sum() for _ in range(20000))
        assert hits / (4 * 20000) == pytest.approx(0.5, abs=0.03)

    def test_mean_burst_length(self):
        pattern = BurstyOnOff(1, 0.3, seed=2, mean_burst=10)
        lengths = burst_lengths(pattern, 50000)
        assert np.mean(lengths) == pytest.approx(10, rel=0.15)

    def test_destination_fixed_within_burst(self):
        pattern = BurstyOnOff(1, 0.5, seed=3, mean_burst=16)
        previous = None
        changes_within_burst = 0
        for _ in range(5000):
            dst = pattern.arrivals()[0]
            if dst != NO_ARRIVAL and previous not in (None, NO_ARRIVAL):
                if dst != previous:
                    changes_within_burst += 1
            previous = dst
        assert changes_within_burst == 0

    def test_load_one_always_on(self):
        pattern = BurstyOnOff(4, 1.0, seed=4, mean_burst=4)
        pattern.arrivals()  # first slot turns sources on
        for _ in range(30):
            assert (pattern.arrivals() != NO_ARRIVAL).all()

    def test_load_zero_always_off(self):
        pattern = BurstyOnOff(4, 0.0, seed=5, mean_burst=4)
        for _ in range(30):
            assert (pattern.arrivals() == NO_ARRIVAL).all()

    def test_reset_reproduces(self):
        pattern = BurstyOnOff(4, 0.4, seed=6, mean_burst=8)
        first = [pattern.arrivals().tolist() for _ in range(30)]
        pattern.reset()
        assert [pattern.arrivals().tolist() for _ in range(30)] == first

    def test_rejects_sub_one_burst(self):
        with pytest.raises(ValueError):
            BurstyOnOff(4, 0.5, mean_burst=0.5)

    def test_burstier_than_bernoulli(self):
        """Arrivals are positively correlated: the variance of per-window
        counts must exceed the Bernoulli variance at the same load."""
        from repro.traffic.bernoulli import BernoulliUniform

        window = 20

        def window_counts(pattern):
            counts = []
            for _ in range(800):
                count = 0
                for _ in range(window):
                    count += int(pattern.arrivals()[0] != NO_ARRIVAL)
                counts.append(count)
            return np.var(counts)

        bursty_var = window_counts(BurstyOnOff(1, 0.5, seed=7, mean_burst=16))
        bernoulli_var = window_counts(BernoulliUniform(1, 0.5, seed=7))
        assert bursty_var > 2 * bernoulli_var
