"""Uniform Bernoulli traffic."""

import numpy as np
import pytest

from repro.traffic.base import NO_ARRIVAL
from repro.traffic.bernoulli import BernoulliUniform


class TestBernoulli:
    def test_load_zero_generates_nothing(self):
        pattern = BernoulliUniform(4, 0.0, seed=1)
        for _ in range(20):
            assert (pattern.arrivals() == NO_ARRIVAL).all()

    def test_load_one_generates_every_slot(self):
        pattern = BernoulliUniform(4, 1.0, seed=1)
        for _ in range(20):
            assert (pattern.arrivals() != NO_ARRIVAL).all()

    def test_empirical_rate_matches_load(self):
        pattern = BernoulliUniform(8, 0.4, seed=2)
        hits = sum((pattern.arrivals() != NO_ARRIVAL).sum() for _ in range(4000))
        rate = hits / (8 * 4000)
        assert rate == pytest.approx(0.4, abs=0.02)

    def test_destinations_roughly_uniform(self):
        pattern = BernoulliUniform(4, 1.0, seed=3)
        counts = np.zeros(4)
        for _ in range(4000):
            for dst in pattern.arrivals():
                counts[dst] += 1
        assert counts.min() > 0.8 * counts.max()

    def test_reset_reproduces_stream(self):
        pattern = BernoulliUniform(4, 0.5, seed=4)
        first = [pattern.arrivals().tolist() for _ in range(10)]
        pattern.reset()
        second = [pattern.arrivals().tolist() for _ in range(10)]
        assert first == second

    def test_rate_matrix_closed_form(self):
        pattern = BernoulliUniform(4, 0.8, seed=5)
        assert pattern.rate_matrix() == pytest.approx(np.full((4, 4), 0.2))

    def test_no_self_traffic_mode(self):
        pattern = BernoulliUniform(4, 1.0, seed=6, self_traffic=False)
        for _ in range(50):
            dst = pattern.arrivals()
            assert all(dst[i] != i for i in range(4))
        rate = pattern.rate_matrix()
        assert np.diag(rate).sum() == 0

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            BernoulliUniform(4, 1.5)
