"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays


def request_matrices(min_n: int = 1, max_n: int = 8) -> st.SearchStrategy[np.ndarray]:
    """Random square boolean request matrices."""
    return st.integers(min_n, max_n).flatmap(
        lambda n: arrays(np.bool_, (n, n), elements=st.booleans())
    )


def request_matrices_of(n: int) -> st.SearchStrategy[np.ndarray]:
    """Random n x n boolean request matrices."""
    return arrays(np.bool_, (n, n), elements=st.booleans())


@pytest.fixture
def fig3_requests() -> np.ndarray:
    """The paper's Figure 3 worked example (4x4)."""
    return np.array(
        [
            [0, 1, 1, 0],  # I0 -> T1, T2
            [1, 0, 1, 1],  # I1 -> T0, T2, T3
            [1, 0, 1, 1],  # I2 -> T0, T2, T3
            [0, 1, 0, 0],  # I3 -> T1
        ],
        dtype=bool,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
