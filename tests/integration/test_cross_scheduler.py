"""Cross-scheduler invariants: every scheduler, same workloads."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.registry import available_schedulers, make_scheduler
from repro.matching.hopcroft_karp import maximum_matching_size
from repro.matching.verify import is_valid_schedule, matching_size

from tests.conftest import request_matrices_of

CROSSBAR_SCHEDULERS = tuple(n for n in available_schedulers() if n != "fifo")


class TestUniversalInvariants:
    @given(request_matrices_of(6))
    @settings(max_examples=30, deadline=None)
    def test_every_scheduler_is_valid_on_random_input(self, requests):
        for name in CROSSBAR_SCHEDULERS:
            scheduler = make_scheduler(name, 6)
            schedule = scheduler.schedule(requests)
            assert is_valid_schedule(requests, schedule), name

    def test_statefulness_survives_many_cycles(self):
        rng = np.random.default_rng(0)
        schedulers = [make_scheduler(name, 5) for name in CROSSBAR_SCHEDULERS]
        for _ in range(100):
            requests = rng.random((5, 5)) < 0.5
            for scheduler in schedulers:
                assert is_valid_schedule(requests, scheduler.schedule(requests))


class TestLCFAdvantage:
    def test_lcf_matches_at_least_as_large_on_average(self):
        """The design premise: least-choice-first matchings are larger on
        average than round-robin / random ones."""
        rng = np.random.default_rng(1)
        n = 8
        totals = {name: 0 for name in ("lcf_central", "islip", "pim", "wfront")}
        schedulers = {name: make_scheduler(name, n) for name in totals}
        for _ in range(300):
            requests = rng.random((n, n)) < 0.4
            for name, scheduler in schedulers.items():
                totals[name] += matching_size(scheduler.schedule(requests))
        assert totals["lcf_central"] >= totals["islip"]
        assert totals["lcf_central"] >= totals["pim"]
        assert totals["lcf_central"] >= totals["wfront"]

    def test_lcf_close_to_maximum_matching(self):
        """Central LCF should land within a few percent of the true
        maximum on sparse random matrices."""
        rng = np.random.default_rng(2)
        n = 8
        scheduler = make_scheduler("lcf_central", n)
        achieved, optimal = 0, 0
        for _ in range(200):
            requests = rng.random((n, n)) < 0.3
            achieved += matching_size(scheduler.schedule(requests))
            optimal += maximum_matching_size(requests)
        assert achieved / optimal > 0.97

    def test_distributed_lcf_tracks_central(self):
        rng = np.random.default_rng(3)
        n = 8
        central = make_scheduler("lcf_central", n)
        distributed = make_scheduler("lcf_dist", n, iterations=4)
        central_total, distributed_total = 0, 0
        for _ in range(200):
            requests = rng.random((n, n)) < 0.5
            central_total += matching_size(central.schedule(requests))
            distributed_total += matching_size(distributed.schedule(requests))
        assert distributed_total >= 0.95 * central_total


class TestSchedulersAreDistinct:
    def test_no_two_schedulers_are_aliases(self):
        """Sanity: over many cycles on a contended workload, every pair
        of registry schedulers must disagree at least once — catching
        registry typos that alias two names to one implementation."""
        rng = np.random.default_rng(99)
        # "ocf" is excluded: on a *boolean* matrix the weighted
        # schedulers all degrade to the same unit-weight rule, so lqf
        # and ocf legitimately coincide here (they differ only when the
        # simulator feeds them occupancies / ages).
        names = [n for n in CROSSBAR_SCHEDULERS if n not in ("greedy", "ocf")]
        schedulers = {name: make_scheduler(name, 6) for name in names}
        histories = {name: [] for name in names}
        for _ in range(60):
            requests = rng.random((6, 6)) < 0.6
            for name, scheduler in schedulers.items():
                histories[name].append(tuple(scheduler.schedule(requests).tolist()))
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                assert histories[a] != histories[b], (a, b)
