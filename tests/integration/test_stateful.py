"""Stateful property tests: schedulers driven through arbitrary request
sequences must keep their invariants at every step.

This is the hypothesis state-machine analogue of soak testing the
hardware: random workloads, interleaved resets, and continuous checking
of validity, maximality (for the always-maximal schedulers), and
round-robin state evolution.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.baselines.islip import ISLIP
from repro.baselines.wavefront import WrappedWaveFront
from repro.core.lcf_central import LCFCentral, LCFCentralRR
from repro.core.lcf_dist import LCFDistributedRR
from repro.matching.verify import is_maximal, is_valid_schedule

N = 5


class SchedulerSoak(RuleBasedStateMachine):
    """Drive a stable of schedulers with a shared random workload."""

    def __init__(self):
        super().__init__()
        self.schedulers = [
            LCFCentral(N),
            LCFCentralRR(N),
            LCFDistributedRR(N, iterations=N),
            ISLIP(N, iterations=N),
            WrappedWaveFront(N),
        ]
        self.always_maximal = {
            "lcf_central",
            "lcf_central_rr",
            "lcf_dist_rr",
            "islip",
            "wfront",
        }
        self.cycles = 0

    @rule(bits=st.integers(0, 2 ** (N * N) - 1))
    def schedule_random_matrix(self, bits):
        requests = np.array(
            [(bits >> k) & 1 for k in range(N * N)], dtype=bool
        ).reshape(N, N)
        for scheduler in self.schedulers:
            schedule = scheduler.schedule(requests)
            assert is_valid_schedule(requests, schedule), scheduler.name
            if scheduler.name in self.always_maximal:
                # With >= n iterations every iterative scheduler here
                # converges, so maximality must hold for all of them.
                assert is_maximal(requests, schedule), scheduler.name
        self.cycles += 1

    @rule()
    def schedule_saturated(self):
        requests = np.ones((N, N), dtype=bool)
        for scheduler in self.schedulers:
            schedule = scheduler.schedule(requests)
            # A full matrix always admits a perfect matching and every
            # scheduler here is maximal-converging: all ports matched.
            assert (schedule >= 0).all(), scheduler.name
        self.cycles += 1

    @rule()
    def reset_everything(self):
        for scheduler in self.schedulers:
            scheduler.reset()

    @invariant()
    def rr_offsets_in_range(self):
        for scheduler in self.schedulers:
            if isinstance(scheduler, (LCFCentral, LCFCentralRR)):
                i, j = scheduler.rr_offsets
                assert 0 <= i < N and 0 <= j < N


SchedulerSoakTest = SchedulerSoak.TestCase
SchedulerSoakTest.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
