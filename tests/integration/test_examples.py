"""Smoke tests: the example scripts must keep running.

Only the fast examples run in CI time (the Figure 12 sweep and the
Clint cluster demo are minutes-long by design and are exercised through
their underlying APIs elsewhere).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "starvation_demo.py",
    "multicast_realtime.py",
    "hw_cost_report.py",
    "clos_fabric.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 7
    for script in scripts:
        source = script.read_text()
        assert source.lstrip().startswith(('"""', "#!")), script.name
        assert '"""' in source, f"{script.name} lacks a docstring"
