"""Mini Figure 12 reproduction — the paper's qualitative claims must
hold even on a reduced grid (8 ports, short runs).

The full-scale reproduction (16 ports, the complete load grid, long
measurement windows) is ``benchmarks/bench_fig12.py`` /
``examples/figure12_sweep.py``; this test keeps CI honest in seconds.
"""

import pytest

from repro.analysis.sweep import SweepSpec, check_paper_shape, run_sweep
from repro.sim.config import SimConfig


@pytest.fixture(scope="module")
def mini_sweep():
    spec = SweepSpec(
        schedulers=(
            "lcf_central",
            "lcf_central_rr",
            "lcf_dist",
            "lcf_dist_rr",
            "pim",
            "islip",
            "wfront",
            "fifo",
            "outbuf",
        ),
        loads=(0.6, 0.9),
        config=SimConfig(
            n_ports=8,
            voq_capacity=64,
            pq_capacity=200,
            warmup_slots=500,
            measure_slots=4000,
            seed=11,
        ),
    )
    return run_sweep(spec)


class TestPaperShape:
    def test_all_section63_claims_hold(self, mini_sweep):
        checks = check_paper_shape(mini_sweep)
        failed = [c for c in checks if not c.passed]
        assert not failed, "\n".join(f"{c.claim}: {c.detail}" for c in failed)
        assert len(checks) >= 8  # every claim was evaluated

    def test_low_load_latencies_differ_little(self, mini_sweep):
        """Paper: 'For low load, the latencies for the various schedulers
        differ very little.'"""
        spec = mini_sweep.spec
        crossbar = [s for s in spec.schedulers if s != "fifo"]
        at_low = [mini_sweep.get(s, 0.6).mean_latency for s in crossbar]
        assert max(at_low) / min(at_low) < 1.6

    def test_differences_grow_at_high_load(self, mini_sweep):
        spec = mini_sweep.spec
        crossbar = [s for s in spec.schedulers if s != "fifo"]
        at_low = [mini_sweep.get(s, 0.6).mean_latency for s in crossbar]
        at_high = [mini_sweep.get(s, 0.9).mean_latency for s in crossbar]
        assert max(at_high) / min(at_high) > max(at_low) / min(at_low)

    def test_all_crossbar_schedulers_carry_the_load(self, mini_sweep):
        # At 0.6 load nothing except fifo should drop or saturate.
        for name in mini_sweep.spec.schedulers:
            if name == "fifo":
                continue
            result = mini_sweep.get(name, 0.6)
            assert result.throughput == pytest.approx(0.6, abs=0.05), name
