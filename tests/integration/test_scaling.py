"""Wide-switch smoke tests: everything still works at n = 32 and 64.

The paper's scalability discussion (Section 6.2) is about wide
switches; these tests make sure nothing in the implementation quietly
assumes n = 16.
"""

import numpy as np
import pytest

from repro.baselines.registry import available_schedulers, make_scheduler
from repro.core.lcf_dist_agents import LCFDistributedAgents
from repro.hw.rtl import LCFSchedulerRTL
from repro.matching.verify import is_valid_schedule, matching_size
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation


class TestWideSwitches:
    @pytest.mark.parametrize("n", [32, 64])
    def test_all_schedulers_produce_valid_schedules(self, n):
        rng = np.random.default_rng(n)
        requests = rng.random((n, n)) < 0.3
        for name in available_schedulers():
            if name == "fifo":
                continue
            scheduler = make_scheduler(name, n)
            assert is_valid_schedule(requests, scheduler.schedule(requests)), name

    def test_full_matrix_perfect_matching_at_64(self):
        requests = np.ones((64, 64), dtype=bool)
        for name in ("lcf_central", "lcf_central_rr", "wfront"):
            schedule = make_scheduler(name, 64).schedule(requests)
            assert matching_size(schedule) == 64, name

    def test_rtl_matches_behavioural_at_32(self):
        from repro.core.lcf_central import LCFCentralRR

        rng = np.random.default_rng(1)
        rtl, behavioural = LCFSchedulerRTL(32), LCFCentralRR(32)
        for _ in range(5):
            requests = rng.random((32, 32)) < 0.4
            assert (rtl.schedule(requests) == behavioural.schedule(requests)).all()
        assert rtl.last_cycles == 3 * 32 + 2

    def test_agents_match_matrix_at_32(self):
        from repro.core.lcf_dist import LCFDistributed

        rng = np.random.default_rng(2)
        agents = LCFDistributedAgents(32, iterations=5)
        matrix = LCFDistributed(32, iterations=5)
        for _ in range(5):
            requests = rng.random((32, 32)) < 0.4
            assert (agents.schedule(requests) == matrix.schedule(requests)).all()

    def test_simulation_runs_at_32_ports(self):
        config = SimConfig(n_ports=32, warmup_slots=100, measure_slots=500)
        result = run_simulation(config, "lcf_central", 0.7)
        assert result.throughput == pytest.approx(0.7, abs=0.07)

    def test_grant_concentration_slows_dense_open_loop_convergence(self):
        """A genuine property of the Section 5 algorithm at scale: on
        dense i.i.d. matrices the least-choice rule makes *every* output
        grant the same few minimum-nrq inputs, so open-loop convergence
        in log2(n) iterations falls short of the central matching — PIM's
        random grants spread better here. (Closed-loop, VOQ backlogs
        diversify the nrq values and lcf_dist regains its Figure 12
        advantage; see the iteration ablation.) Doubling the iterations
        restores optimality."""
        from repro.baselines.pim import PIM
        from repro.core.lcf_central import LCFCentral
        from repro.core.lcf_dist import LCFDistributed

        rng = np.random.default_rng(3)
        central = LCFCentral(32)
        dist_log = LCFDistributed(32, iterations=5)  # log2(32)
        dist_2log = LCFDistributed(32, iterations=10)
        pim = PIM(32, iterations=5)
        totals = {"central": 0, "log": 0, "2log": 0, "pim": 0}
        for _ in range(30):
            requests = rng.random((32, 32)) < 0.5
            totals["central"] += matching_size(central.schedule(requests))
            totals["log"] += matching_size(dist_log.schedule(requests))
            totals["2log"] += matching_size(dist_2log.schedule(requests))
            totals["pim"] += matching_size(pim.schedule(requests))
        assert totals["log"] < totals["pim"] < totals["central"]  # concentration
        assert totals["2log"] >= 0.99 * totals["central"]  # recovered
