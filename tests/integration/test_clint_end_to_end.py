"""Clint system at the paper's full scale: 16 hosts, bulk + quick."""

import pytest

from repro.clint.network import ClintNetwork
from repro.traffic.bernoulli import BernoulliUniform
from repro.traffic.bursty import BurstyOnOff


class TestFullScaleClint:
    def test_sixteen_host_prototype(self):
        """The paper's prototype: star topology, 16 hosts."""
        net = ClintNetwork(16, seed=1)
        stats = net.run(
            1000,
            bulk_traffic=BernoulliUniform(16, 0.5, seed=2),
            quick_traffic=BernoulliUniform(16, 0.2, seed=3),
        )
        assert stats.bulk_delivered > 6000
        assert stats.acks_delivered == stats.bulk_delivered
        assert 2.0 <= stats.mean_bulk_latency < 10.0

    def test_scheduled_bulk_channel_never_drops_in_fabric(self):
        """The whole point of pre-scheduling: unlike the quick channel,
        bulk packets cannot collide, so the only losses are VOQ
        overflows at the hosts."""
        net = ClintNetwork(16, seed=4)
        stats = net.run(500, bulk_traffic=BernoulliUniform(16, 0.9, seed=5))
        delivered_plus_queued = stats.bulk_delivered + net.backlog()
        offered = sum(h.bulk_sent for h in net.hosts)  # granted transfers
        assert stats.bulk_delivered == offered

    def test_quick_channel_degrades_gracefully_under_load(self):
        low = ClintNetwork(16, seed=6)
        high = ClintNetwork(16, seed=6)
        low.run(400, quick_traffic=BernoulliUniform(16, 0.1, seed=7))
        high.run(400, quick_traffic=BernoulliUniform(16, 0.9, seed=7))
        assert low.stats.quick_drop_rate < high.stats.quick_drop_rate
        assert high.stats.quick_drop_rate < 0.6  # still mostly delivering

    def test_bursty_bulk_traffic_is_lossless_end_to_end(self):
        net = ClintNetwork(16, seed=8)
        stats = net.run(800, bulk_traffic=BurstyOnOff(16, 0.4, seed=9, mean_burst=8))
        assert stats.bulk_delivered > 0
        assert stats.acks_delivered == stats.bulk_delivered
        dropped = sum(h.bulk_dropped for h in net.hosts)
        assert dropped == 0  # VOQs never overflowed at this load
