"""Workload replay: the same recorded trace against every scheduler.

Trace replay is how a user with real traffic compares schedulers on
*identical* workloads (no Monte-Carlo noise between candidates). These
tests pin the mechanism: bit-identical reruns, apples-to-apples
comparisons, conservation under replay.
"""

import numpy as np
import pytest

from repro.baselines.registry import PAPER_SCHEDULERS
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation
from repro.traffic.bernoulli import BernoulliUniform
from repro.traffic.trace import TraceReplay, record_trace

CONFIG = SimConfig(n_ports=8, voq_capacity=64, pq_capacity=200,
                   warmup_slots=200, measure_slots=1500)


@pytest.fixture(scope="module")
def trace():
    source = BernoulliUniform(8, 0.85, seed=21)
    return record_trace(source, CONFIG.total_slots)


class TestReplayAcrossSchedulers:
    def test_every_scheduler_handles_the_same_trace(self, trace):
        results = {}
        for name in PAPER_SCHEDULERS:
            result = run_simulation(
                CONFIG, name, 0.85, traffic=TraceReplay(trace.copy())
            )
            results[name] = result
            assert result.forwarded > 0, name
        # The identical workload preserves the Figure 12 ordering at
        # this load: LCF-central under PIM/iSLIP/wavefront.
        assert results["lcf_central"].mean_latency < results["pim"].mean_latency
        assert results["lcf_central"].mean_latency < results["islip"].mean_latency

    def test_replay_is_bit_identical(self, trace):
        first = run_simulation(CONFIG, "islip", 0.85, traffic=TraceReplay(trace.copy()))
        second = run_simulation(CONFIG, "islip", 0.85, traffic=TraceReplay(trace.copy()))
        assert first.mean_latency == second.mean_latency
        assert first.forwarded == second.forwarded

    def test_offered_load_is_scheduler_independent(self, trace):
        offered = {
            name: run_simulation(
                CONFIG, name, 0.85, traffic=TraceReplay(trace.copy())
            ).offered
            for name in ("lcf_central", "wfront", "outbuf")
        }
        assert len(set(offered.values())) == 1
