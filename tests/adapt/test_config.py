"""AdaptConfig validation, spec round-trips, and adapter resolution."""

import pytest

from repro.adapt import (
    AdaptConfig,
    AdaptiveLCF,
    ObliviousAdapter,
    SchedulingAdapter,
    make_adapter,
)


def test_defaults_are_valid_and_count_mode():
    config = AdaptConfig()
    assert config.mode == "count"
    assert config.detection_window >= 1
    assert config.probe_interval >= 1


def test_default_spec_is_policy_only():
    assert AdaptConfig().to_spec() == (("policy", "adaptive"),)


def test_spec_includes_only_non_default_fields_sorted():
    config = AdaptConfig(mode="ewma", probe_interval=8)
    spec = AdaptConfig(mode="ewma", probe_interval=8).to_spec()
    assert spec == tuple(sorted(spec))
    assert dict(spec) == {"policy": "adaptive", "mode": "ewma", "probe_interval": 8}
    assert AdaptConfig.from_spec(spec) == config


@pytest.mark.parametrize(
    "fields",
    [
        {},
        {"detection_window": 5, "probation_window": 2},
        {"mode": "ewma", "ewma_alpha": 0.5, "suspect_threshold": 0.3},
        {"starvation_window": 12, "port_detection_window": 0},
    ],
)
def test_spec_round_trip(fields):
    config = AdaptConfig(**fields)
    assert AdaptConfig.from_spec(config.to_spec()) == config
    assert AdaptConfig.from_spec(dict(config.to_spec())) == config


def test_from_spec_rejects_oblivious_policy():
    with pytest.raises(ValueError, match="policy"):
        AdaptConfig.from_spec({"policy": "oblivious"})


def test_from_spec_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown"):
        AdaptConfig.from_spec({"definitely_not_a_field": 1})


@pytest.mark.parametrize(
    "fields",
    [
        {"mode": "bogus"},
        {"detection_window": 0},
        {"probation_window": 0},
        {"probe_interval": 0},
        {"port_detection_window": -1},
        {"starvation_window": -5},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"suspect_threshold": 1.2},
        {"readmit_threshold": -0.1},
        {"suspect_threshold": 0.8, "readmit_threshold": 0.4},
    ],
)
def test_invalid_fields_rejected(fields):
    with pytest.raises(ValueError):
        AdaptConfig(**fields)


def test_describe_mentions_the_mode_parameters():
    assert "detect after" in AdaptConfig().describe()
    assert "ewma" in AdaptConfig(mode="ewma").describe()


# -- make_adapter resolution -------------------------------------------------


@pytest.mark.parametrize("spec", [None, (), {}, []])
def test_empty_specs_mean_no_adapter(spec):
    assert make_adapter(spec) is None


def test_existing_adapter_passes_through():
    adapter = AdaptiveLCF()
    assert make_adapter(adapter) is adapter


def test_config_object_wraps_in_adaptive():
    config = AdaptConfig(detection_window=7)
    adapter = make_adapter(config)
    assert isinstance(adapter, AdaptiveLCF)
    assert adapter.config is config


def test_wire_form_builds_adaptive_with_fields():
    adapter = make_adapter({"policy": "adaptive", "probe_interval": 2})
    assert isinstance(adapter, AdaptiveLCF)
    assert adapter.config.probe_interval == 2
    # policy defaults to adaptive when omitted
    assert isinstance(make_adapter({"detection_window": 2}), AdaptiveLCF)


def test_wire_form_builds_oblivious():
    adapter = make_adapter({"policy": "oblivious"})
    assert isinstance(adapter, ObliviousAdapter)
    assert adapter.to_spec() == (("policy", "oblivious"),)


def test_oblivious_rejects_config_keys():
    with pytest.raises(ValueError, match="oblivious"):
        make_adapter({"policy": "oblivious", "detection_window": 2})


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown adapter policy"):
        make_adapter({"policy": "psychic"})


def test_adaptive_rejects_config_and_kwargs_together():
    with pytest.raises(ValueError, match="not both"):
        AdaptiveLCF(AdaptConfig(), detection_window=2)


def test_base_adapter_is_a_pure_pass_through():
    import numpy as np

    adapter = SchedulingAdapter()
    adapter.bind(4)
    matrix = np.ones((4, 4), dtype=bool)
    assert adapter.filter_requests(0, matrix) is matrix
    assert adapter.to_spec() == (("policy", "oblivious"),)
