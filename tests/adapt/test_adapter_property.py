"""Satellite property: adaptive wrapping never breaks scheduling.

For any fault plan and any registry crossbar scheduler wrapped in
:class:`AdaptiveLCF`, every schedule the scheduler emits must be a valid
conflict-free matching over the requests it was shown — and with a null
plan the wrapper must be *absent*, not inert: statistics and event
traces bit-identical to the unwrapped scheduler.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt import AdaptConfig, AdaptiveLCF
from repro.baselines.registry import SPECIAL_SWITCH_NAMES, available_schedulers
from repro.faults import FaultPlan, LinkOutage
from repro.matching.verify import is_conflict_free, is_valid_schedule
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation
from repro.types import NO_GRANT

CROSSBAR_SCHEDULERS = tuple(
    name for name in available_schedulers() if name not in SPECIAL_SWITCH_NAMES
)

N = 4
CONFIG = SimConfig(n_ports=N, warmup_slots=10, measure_slots=60, seed=6)


class RecordingAdaptive(AdaptiveLCF):
    """AdaptiveLCF that checks the matching invariants on every slot."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.slots_checked = 0
        self._seen = None

    def filter_requests(self, slot, matrix):
        seen = super().filter_requests(slot, matrix)
        self._seen = seen.copy()
        return seen

    def observe(self, slot, proposed, applied):
        # The scheduler's output over the filtered requests must be a
        # valid conflict-free matching of exactly those requests...
        assert is_conflict_free(proposed), (slot, proposed)
        assert is_valid_schedule(self._seen, proposed), (slot, proposed)
        # ...and the fabric can only remove grants, never add or move.
        for i in range(len(applied)):
            assert applied[i] == proposed[i] or applied[i] == NO_GRANT
        # Any grant the estimator let through on a blocked crosspoint
        # must have been one of this slot's probes.
        blocked = self.estimator.blocked
        for i in range(len(proposed)):
            j = int(proposed[i])
            if j != NO_GRANT and blocked[i, j]:
                assert self.estimator.was_probe(i, j), (slot, i, j)
        self.slots_checked += 1
        super().observe(slot, proposed, applied)


def fault_plans(n=N, horizon=70):
    """Null, duty-cycled, and explicit link-outage plans."""
    link = st.builds(
        LinkOutage,
        input=st.integers(0, n - 1),
        output=st.integers(0, n - 1),
        start=st.integers(0, horizon // 2),
        end=st.integers(horizon // 2, horizon),
    )
    return st.one_of(
        st.just(FaultPlan()),
        st.floats(0.5, 0.95).map(
            lambda a: FaultPlan.availability(n, a, period=40)
        ),
        st.lists(link, min_size=1, max_size=3).map(
            lambda links: FaultPlan(link_down=tuple(links))
        ),
    )


@pytest.mark.slow
@given(
    scheduler=st.sampled_from(CROSSBAR_SCHEDULERS),
    plan=fault_plans(),
    load=st.floats(0.2, 1.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_every_adaptive_schedule_is_a_valid_matching(scheduler, plan, load, seed):
    config = SimConfig(n_ports=N, warmup_slots=5, measure_slots=40, seed=seed)
    adapter = RecordingAdaptive(AdaptConfig())
    run_simulation(config, scheduler, load, faults=plan, adapter=adapter)
    assert adapter.slots_checked == config.warmup_slots + config.measure_slots


@pytest.mark.parametrize("scheduler", CROSSBAR_SCHEDULERS)
def test_null_plan_adaptive_is_bit_identical(scheduler):
    plain = run_simulation(CONFIG, scheduler, 0.7)
    wrapped = run_simulation(
        CONFIG, scheduler, 0.7, faults=FaultPlan(), adapter=AdaptiveLCF()
    )
    assert plain.row() == wrapped.row()


def test_null_plan_adaptive_traces_are_identical():
    def traced(**kwargs):
        tracer = RingTracer(1 << 16)
        result = run_simulation(
            CONFIG, "lcf_dist_rr", 0.7, tracer=tracer, **kwargs
        )
        return result, tracer.events

    plain_result, plain_events = traced()
    wrapped_result, wrapped_events = traced(
        faults=FaultPlan(), adapter=AdaptiveLCF()
    )
    assert plain_result.row() == wrapped_result.row()
    assert plain_events == wrapped_events


def test_no_faults_means_nothing_learned():
    adapter = RecordingAdaptive()
    run_simulation(CONFIG, "lcf_central_rr", 0.9, adapter=adapter)
    estimator = adapter.estimator
    assert estimator.suspect_events == 0
    assert estimator.probe_events == 0
    assert not estimator.blocked.any()


@pytest.mark.slow
@given(
    scheduler=st.sampled_from(CROSSBAR_SCHEDULERS),
    load=st.floats(0.1, 1.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_null_plan_bit_identity_property(scheduler, load, seed):
    config = SimConfig(n_ports=N, warmup_slots=5, measure_slots=40, seed=seed)
    plain = run_simulation(config, scheduler, load)
    wrapped = run_simulation(
        config, scheduler, load, faults=FaultPlan(),
        adapter={"policy": "adaptive"},
    )
    assert plain.row() == wrapped.row()


def test_oblivious_null_plan_is_also_bit_identical():
    plain = run_simulation(CONFIG, "islip", 0.7)
    blind = run_simulation(
        CONFIG, "islip", 0.7, faults=FaultPlan(),
        adapter={"policy": "oblivious"},
    )
    assert plain.row() == blind.row()
