"""Satellite property: detection and readmission obey their windows.

A permanent crosspoint outage must turn suspect within the configured
detection window, be granted only on the probe cadence afterwards, and
be readmitted within the probation window once it recovers — bounds
asserted exactly, not just "eventually".
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt import AdaptConfig, AdaptiveLCF, HealthEstimator
from repro.faults import FaultPlan, LinkOutage
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation
from repro.types import NO_GRANT


@pytest.mark.slow
@given(
    detection_window=st.integers(1, 5),
    probation_window=st.integers(1, 3),
    probe_interval=st.integers(1, 8),
    outage_start=st.integers(0, 10),
    outage_length=st.integers(8, 40),
    seed_j=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_outage_lifecycle_bounds(
    detection_window, probation_window, probe_interval,
    outage_start, outage_length, seed_j,
):
    n = 4
    config = AdaptConfig(
        detection_window=detection_window,
        probation_window=probation_window,
        probe_interval=probe_interval,
        port_detection_window=0,
    )
    estimator = HealthEstimator(n, config)
    matrix = np.zeros((n, n), dtype=bool)
    matrix[0, seed_j] = True
    recovery = outage_start + outage_length
    horizon = recovery + probe_interval * (probation_window + 2) + 4

    suspect_slot = None
    readmit_slot = None
    granted = []
    probes = []
    for slot in range(horizon):
        seen = estimator.usable(slot, matrix)
        proposed = np.full(n, NO_GRANT, dtype=np.int64)
        if seen[0, seed_j]:
            proposed[0] = seed_j
            granted.append(slot)
            if estimator.was_probe(0, seed_j):
                probes.append(slot)
        applied = proposed.copy()
        if outage_start <= slot < recovery:
            applied[0] = NO_GRANT
        estimator.observe(slot, proposed, applied)
        if suspect_slot is None and estimator.blocked[0, seed_j]:
            suspect_slot = slot
        elif suspect_slot is not None and readmit_slot is None \
                and not estimator.blocked[0, seed_j]:
            readmit_slot = slot

    # Detection: suspicion lands exactly detection_window failed grants
    # into the outage (the flow is offered every slot until then).
    assert suspect_slot == outage_start + detection_window - 1

    # Quarantine: while suspect the crosspoint is granted *only* via
    # probes, and those sit exactly on the configured cadence. (The
    # readmission slot itself is the last probe; afterwards service is
    # normal again.)
    assert readmit_slot is not None
    quarantined = [
        slot for slot in granted if suspect_slot < slot <= readmit_slot
    ]
    assert quarantined == probes
    assert all(
        (slot - suspect_slot) % probe_interval == 0 for slot in quarantined
    )

    # Readmission: the first probe at or after recovery starts the
    # probation count, one success per probe interval — so readmission
    # lands within probation_window probe intervals of recovery.
    assert readmit_slot >= recovery
    assert readmit_slot <= recovery + probe_interval * probation_window

    # Steady state afterwards: full service, still readmitted.
    assert not estimator.blocked.any()
    assert set(range(readmit_slot + 1, horizon)) <= set(granted)
    assert estimator.suspect_events == 1
    assert estimator.readmit_events == 1
    assert estimator.false_positives == 0


def test_end_to_end_outage_emits_ordered_lifecycle_events():
    """Through the full switch: suspect -> probes -> readmit, in order."""
    plan = FaultPlan(link_down=(LinkOutage(0, 1, 20, 70),))
    tracer = RingTracer(1 << 16)
    config = SimConfig(n_ports=4, warmup_slots=0, measure_slots=120, seed=3)
    adapter = AdaptiveLCF(AdaptConfig(port_detection_window=0))
    run_simulation(
        config, "lcf_central_rr", 0.9, tracer=tracer,
        faults=plan, adapter=adapter,
    )
    suspects = [
        e for e in tracer.events
        if e["type"] == "suspect" and (e["input"], e["output"]) == (0, 1)
    ]
    readmits = [
        e for e in tracer.events
        if e["type"] == "readmit" and (e["input"], e["output"]) == (0, 1)
    ]
    probes = [
        e for e in tracer.events
        if e["type"] == "probe" and (e["input"], e["output"]) == (0, 1)
    ]
    assert suspects, "outage was never detected"
    first_suspect = suspects[0]["slot"]
    assert 20 <= first_suspect < 70
    assert probes and all(e["slot"] > first_suspect for e in probes)
    assert readmits, "recovered crosspoint was never readmitted"
    assert readmits[0]["slot"] >= 70
    assert not adapter.estimator.blocked.any()
    assert adapter.estimator.false_positives == 0
