"""HealthEstimator state machine under hand-driven observation streams.

Every test drives the estimator the way :class:`repro.adapt.AdaptiveLCF`
does — ``usable`` before scheduling, ``observe`` after the fabric gate —
but with handcrafted schedules, so each transition (suspect, probe,
readmit, port escalation, starvation) is pinned at exact slots.
"""

import numpy as np
import pytest

from repro.adapt import AdaptConfig, HealthEstimator
from repro.obs.events import validate_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RingTracer
from repro.types import NO_GRANT


def single_flow_matrix(n=4, i=0, j=1):
    matrix = np.zeros((n, n), dtype=bool)
    matrix[i, j] = True
    return matrix


def drive_single_flow(estimator, slot, matrix, up, i=0, j=1):
    """One adapter slot for a single persistent flow ``(i, j)``.

    Proposes the grant whenever the estimator lets the request through;
    the fabric applies it only when ``up``. Returns whether the flow
    was offered to the scheduler this slot.
    """
    n = estimator.n
    seen = estimator.usable(slot, matrix)
    proposed = np.full(n, NO_GRANT, dtype=np.int64)
    if seen[i, j]:
        proposed[i] = j
    applied = proposed.copy()
    if not up:
        applied[i] = NO_GRANT
    estimator.observe(slot, proposed, applied)
    return bool(seen[i, j])


CONFIG = AdaptConfig(
    detection_window=3, probation_window=1, probe_interval=4,
    port_detection_window=0,
)


def test_permanent_outage_suspected_after_detection_window():
    tracer = RingTracer(1 << 10)
    estimator = HealthEstimator(4, CONFIG, tracer=tracer)
    matrix = single_flow_matrix()
    for slot in range(3):
        assert not estimator.blocked.any()
        drive_single_flow(estimator, slot, matrix, up=False)
    # Third consecutive failed grant (slot 2) trips the window.
    assert estimator.blocked[0, 1]
    assert estimator.suspect_events == 1
    [event] = [e for e in tracer.events if e["type"] == "suspect"]
    assert event["slot"] == 2
    assert event["scope"] == "link"
    assert event["fails"] == CONFIG.detection_window
    assert validate_event(event) == []


def test_suspect_offered_only_on_probe_cadence():
    estimator = HealthEstimator(4, CONFIG)
    matrix = single_flow_matrix()
    offered = {}
    for slot in range(24):
        offered[slot] = drive_single_flow(estimator, slot, matrix, up=False)
    # Service slots until suspicion at slot 2, probes every 4 after.
    suspect_slot = 2
    for slot, got in offered.items():
        if slot <= suspect_slot:
            assert got, slot
        else:
            expected = (slot - suspect_slot) % CONFIG.probe_interval == 0
            assert got == expected, slot
    probe_slots = [s for s in offered if s > suspect_slot and offered[s]]
    assert estimator.probe_events == len(probe_slots)


def test_readmission_on_first_successful_probe():
    tracer = RingTracer(1 << 10)
    estimator = HealthEstimator(4, CONFIG, tracer=tracer)
    matrix = single_flow_matrix()
    recovery = 8
    served = []
    for slot in range(20):
        up = slot >= recovery
        if drive_single_flow(estimator, slot, matrix, up=up) and up:
            served.append(slot)
    # Suspect at 2; probes at 6 (fails) and 10 (first success, probation
    # window 1 -> immediate readmission); full service afterwards.
    [readmit] = [e for e in tracer.events if e["type"] == "readmit"]
    assert readmit["slot"] == 10
    assert readmit["after"] == 8
    assert validate_event(readmit) == []
    assert not estimator.blocked.any()
    assert served == [10] + list(range(11, 20))
    assert estimator.readmit_events == 1


def test_probation_window_requires_consecutive_probe_successes():
    config = AdaptConfig(
        detection_window=3, probation_window=2, probe_interval=4,
        port_detection_window=0,
    )
    tracer = RingTracer(1 << 10)
    estimator = HealthEstimator(4, config, tracer=tracer)
    matrix = single_flow_matrix()
    for slot in range(20):
        drive_single_flow(estimator, slot, matrix, up=slot >= 8)
    # Probes at 6 (fails), 10 and 14 succeed -> readmitted at 14.
    [readmit] = [e for e in tracer.events if e["type"] == "readmit"]
    assert readmit["slot"] == 14


def test_port_outage_escalates_to_port_suspect_and_clears_optimistically():
    config = AdaptConfig(
        detection_window=2, probation_window=1, probe_interval=4,
        port_detection_window=3,
    )
    tracer = RingTracer(1 << 12)
    estimator = HealthEstimator(4, config, tracer=tracer)
    # Every input wants output 2; the whole output port is down.
    matrix = np.zeros((4, 4), dtype=bool)
    matrix[:, 2] = True
    recovery = 12
    for slot in range(20):
        seen = estimator.usable(slot, matrix)
        proposed = np.full(4, NO_GRANT, dtype=np.int64)
        candidates = np.flatnonzero(seen[:, 2])
        if candidates.size:
            proposed[candidates[0]] = 2
        applied = proposed.copy()
        if slot < recovery:
            applied[:] = NO_GRANT
        estimator.observe(slot, proposed, applied)
    port_suspects = [
        e for e in tracer.events
        if e["type"] == "suspect" and e["scope"] == "output"
    ]
    assert len(port_suspects) == 1
    # Three consecutive column failures beat per-crosspoint detection.
    assert port_suspects[0]["slot"] == 2
    assert port_suspects[0]["output"] == 2
    assert port_suspects[0]["input"] == -1
    for event in tracer.events:
        assert validate_event(event) == [], event
    # After recovery one successful port probe readmits the port and
    # optimistically clears the crosspoint suspects raised by the same
    # outage — the whole column returns, not one link per interval.
    assert not estimator.blocked.any()
    port_readmits = [
        e for e in tracer.events
        if e["type"] == "readmit" and e["scope"] == "output"
    ]
    assert len(port_readmits) == 1


def test_ewma_mode_suspects_and_readmits_with_hysteresis():
    config = AdaptConfig(
        mode="ewma", ewma_alpha=0.5, suspect_threshold=0.5,
        readmit_threshold=0.75, probe_interval=2, port_detection_window=0,
    )
    estimator = HealthEstimator(2, config)
    matrix = single_flow_matrix(n=2, i=0, j=1)
    suspect_slot = None
    readmit_slot = None
    for slot in range(16):
        drive_single_flow(estimator, slot, matrix, up=slot >= 4, i=0, j=1)
        if suspect_slot is None and estimator.blocked[0, 1]:
            suspect_slot = slot
        if suspect_slot is not None and readmit_slot is None \
                and not estimator.blocked[0, 1]:
            readmit_slot = slot
    # health 1 -> .5 -> .25 (< .5): suspect on the second failure.
    assert suspect_slot == 1
    # Two successful probes lift .25 -> .625 -> .8125 (>= .75).
    assert readmit_slot is not None
    assert estimator.readmit_events == 1


def test_starvation_signal_detects_without_any_grants():
    config = AdaptConfig(
        detection_window=3, starvation_window=2, port_detection_window=0,
    )
    estimator = HealthEstimator(4, config)
    matrix = single_flow_matrix()
    idle = np.full(4, NO_GRANT, dtype=np.int64)
    suspect_slot = None
    for slot in range(10):
        estimator.usable(slot, matrix)
        estimator.observe(slot, idle, idle)
        if suspect_slot is None and estimator.blocked[0, 1]:
            suspect_slot = slot
    # Strikes at slots 2, 4, 6 (one per starvation window) trip the
    # three-strike detection window with no grant ever proposed.
    assert suspect_slot == 6
    assert estimator.suspect_events == 1


def test_starvation_disabled_by_default():
    estimator = HealthEstimator(4, CONFIG)
    matrix = single_flow_matrix()
    idle = np.full(4, NO_GRANT, dtype=np.int64)
    for slot in range(40):
        assert estimator.usable(slot, matrix) is matrix
        estimator.observe(slot, idle, idle)
    assert not estimator.blocked.any()
    assert estimator.suspect_events == 0


def test_truth_scores_detection_latency_without_false_positives():
    metrics = MetricsRegistry()
    estimator = HealthEstimator(4, CONFIG, metrics=metrics)
    matrix = single_flow_matrix()
    truth = np.ones((4, 4), dtype=bool)
    outage_start = 5
    for slot in range(12):
        down = slot >= outage_start
        mask = truth.copy()
        if down:
            mask[0, 1] = False
        estimator.note_truth(slot, mask)
        drive_single_flow(estimator, slot, matrix, up=not down)
    hist = metrics.histogram(
        "detection_latency", (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
    )
    assert hist.count == 1
    # Suspect fires detection_window slots into the outage.
    assert hist.mean == CONFIG.detection_window - 1
    assert estimator.false_positives == 0
    assert metrics.counter("adapt_false_positives").value == 0


def test_suspecting_a_healthy_crosspoint_counts_as_false_positive():
    config = AdaptConfig(
        detection_window=1, starvation_window=1, port_detection_window=0,
    )
    metrics = MetricsRegistry()
    estimator = HealthEstimator(4, config, metrics=metrics)
    matrix = single_flow_matrix()
    truth = np.ones((4, 4), dtype=bool)
    idle = np.full(4, NO_GRANT, dtype=np.int64)
    for slot in range(4):
        estimator.note_truth(slot, truth)
        estimator.usable(slot, matrix)
        estimator.observe(slot, idle, idle)
        if estimator.false_positives:
            break
    # The starved-but-healthy crosspoint was suspected against truth.
    assert estimator.false_positives == 1
    assert metrics.counter("adapt_false_positives").value == 1


def test_zero_state_fast_path_returns_the_input_object():
    estimator = HealthEstimator(4, CONFIG)
    matrix = np.ones((4, 4), dtype=bool)
    assert estimator.usable(0, matrix) is matrix


def test_reset_restores_power_on_state():
    estimator = HealthEstimator(4, CONFIG)
    matrix = single_flow_matrix()
    for slot in range(6):
        drive_single_flow(estimator, slot, matrix, up=False)
    assert estimator.blocked.any()
    estimator.reset()
    assert not estimator.blocked.any()
    assert estimator.suspect_events == 0
    assert estimator.probe_events == 0
    assert estimator.usable(0, matrix) is matrix


def test_attach_late_binds_instrumentation():
    estimator = HealthEstimator(4, CONFIG)
    tracer = RingTracer(1 << 10)
    metrics = MetricsRegistry()
    estimator.attach(tracer, metrics)
    matrix = single_flow_matrix()
    for slot in range(3):
        drive_single_flow(estimator, slot, matrix, up=False)
    assert any(e["type"] == "suspect" for e in tracer.events)
    assert metrics.counter("suspects").value == 1


def test_rejects_empty_switch():
    with pytest.raises(ValueError, match="at least 1 port"):
        HealthEstimator(0)


def test_health_score_shape_and_range():
    for mode in ("count", "ewma"):
        estimator = HealthEstimator(
            4, AdaptConfig(mode=mode, port_detection_window=0)
        )
        matrix = single_flow_matrix()
        for slot in range(4):
            drive_single_flow(estimator, slot, matrix, up=False)
        score = estimator.health_score()
        assert score.shape == (4, 4)
        assert (score >= 0).all() and (score <= 1).all()
        assert score[0, 1] < score[2, 3]
