"""BackupPortPolicy ranking: health-descending, slot-rotated, pure."""

import numpy as np
import pytest

from repro.adapt import BackupPortPolicy

POLICY = BackupPortPolicy()


def _mask(n, *indices):
    mask = np.zeros(n, dtype=bool)
    for j in indices:
        mask[j] = True
    return mask


def test_rank_orders_by_descending_health():
    health = np.array([0.1, 0.9, 0.5, 0.7])
    order = POLICY.rank(0, 0, _mask(4, 0, 1, 2, 3), health)
    assert order == [1, 3, 2, 0]


def test_rank_returns_only_candidates():
    health = np.ones(4)
    order = POLICY.rank(0, 0, _mask(4, 1, 3), health)
    assert sorted(order) == [1, 3]


def test_health_ties_rotate_with_the_slot():
    health = np.ones(4)
    candidates = _mask(4, 0, 1, 2, 3)
    firsts = [POLICY.choose(slot, 0, candidates, health) for slot in range(4)]
    # Each slot promotes a different equally-healthy candidate.
    assert sorted(firsts) == [0, 1, 2, 3]


def test_rank_is_deterministic():
    health = np.array([0.2, 0.2, 0.8, 0.8])
    candidates = _mask(4, 0, 1, 2, 3)
    first = POLICY.rank(5, 2, candidates, health)
    assert all(POLICY.rank(5, 2, candidates, health) == first for _ in range(3))


def test_choose_is_the_top_of_rank():
    health = np.array([0.3, 0.6, 0.1])
    candidates = _mask(3, 0, 1, 2)
    assert POLICY.choose(1, 1, candidates, health) == POLICY.rank(1, 1, candidates, health)[0]


def test_empty_candidates_raise():
    with pytest.raises(ValueError, match="no candidate"):
        POLICY.choose(0, 0, np.zeros(4, dtype=bool), np.ones(4))
    assert POLICY.rank(0, 0, np.zeros(4, dtype=bool), np.ones(4)) == []
