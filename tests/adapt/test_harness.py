"""run_adaptive_sweep: both stances through the cached sweep engine."""

import math

import pytest

from repro.adapt import AdaptConfig
from repro.faults.harness import OBLIVIOUS_SPEC, run_adaptive_sweep
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation

CONFIG = SimConfig(n_ports=4, warmup_slots=10, measure_slots=60, seed=5)
GRID = (1.0, 0.8)
SCHEDULERS = ("lcf_dist_rr",)


@pytest.fixture(scope="module")
def report():
    return run_adaptive_sweep(
        SCHEDULERS, availabilities=GRID, load=0.7, config=CONFIG, period=40
    )


def test_every_cell_ran_under_both_stances(report):
    for name in SCHEDULERS:
        for value in GRID:
            assert (name, value) in report.oblivious
            assert (name, value) in report.adaptive
    assert report.baseline_value == 1.0
    assert dict(report.adapt_spec)["policy"] == "adaptive"
    assert OBLIVIOUS_SPEC == (("policy", "oblivious"),)


def test_healthy_point_is_identical_across_stances_and_to_plain(report):
    plain = run_simulation(CONFIG, "lcf_dist_rr", 0.7)
    assert report.oblivious[("lcf_dist_rr", 1.0)].row() == plain.row()
    assert report.adaptive[("lcf_dist_rr", 1.0)].row() == plain.row()


def test_recovered_fraction_shape(report):
    # Healthy point: the oblivious stance lost nothing -> NaN.
    assert math.isnan(report.recovered("lcf_dist_rr", 1.0))
    # Degraded point: a finite fraction (sign depends on the workload).
    degraded = report.recovered("lcf_dist_rr", 0.8)
    assert math.isfinite(degraded) or math.isnan(degraded)


def test_rows_and_csv_cover_every_stance(report):
    rows = report.rows()
    assert len(rows) == len(SCHEDULERS) * len(GRID) * 2
    stances = {row["stance"] for row in rows}
    assert stances == {"oblivious", "adaptive"}
    for row in rows:
        assert "availability" in row and "recovered" in row
    csv = report.to_csv()
    assert csv.count("\n") >= len(rows)
    assert "adaptive" in report.summary()


def test_results_are_cache_backed(tmp_path):
    cache = tmp_path / "cache"
    first = run_adaptive_sweep(
        SCHEDULERS, availabilities=GRID, load=0.7, config=CONFIG,
        period=40, cache=cache,
    )
    assert sum(r.cache_hits for r in first.sweep_reports) == 0
    again = run_adaptive_sweep(
        SCHEDULERS, availabilities=GRID, load=0.7, config=CONFIG,
        period=40, cache=cache,
    )
    hits = sum(r.cache_hits for r in again.sweep_reports)
    total = sum(r.total_points for r in again.sweep_reports)
    assert hits == total > 0
    for key, result in first.adaptive.items():
        assert again.adaptive[key].row() == result.row()


def test_adapt_spec_accepts_config_and_pairs(tmp_path):
    config = AdaptConfig(probe_interval=2)
    by_config = run_adaptive_sweep(
        SCHEDULERS, availabilities=(0.8,), load=0.7, config=CONFIG,
        period=40, adapt=config,
    )
    by_spec = run_adaptive_sweep(
        SCHEDULERS, availabilities=(0.8,), load=0.7, config=CONFIG,
        period=40, adapt=config.to_spec(),
    )
    assert by_config.adapt_spec == by_spec.adapt_spec
    assert (
        by_config.adaptive[("lcf_dist_rr", 0.8)].row()
        == by_spec.adaptive[("lcf_dist_rr", 0.8)].row()
    )
