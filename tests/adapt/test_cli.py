"""``lcf-adapt`` CLI end-to-end, including the negative paths."""

import json
import sys
from pathlib import Path

from repro.adapt import cli

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

from check_trace_schema import check_trace  # noqa: E402

FAST = ("--ports", "4", "--slots", "80", "--warmup", "10", "--seed", "3")


def run_cli(capsys, *argv):
    code = cli.main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_single_run_compares_stances_and_writes_artifacts(tmp_path, capsys):
    trace = tmp_path / "adapt.jsonl"
    report = tmp_path / "adapt.json"
    code, stdout, _ = run_cli(
        capsys,
        *FAST,
        "--scheduler", "lcf_central_rr", "--availability", "0.8",
        "--trace-out", str(trace), "--json", str(report),
    )
    assert code == 0
    assert "oblivious" in stdout and "adaptive" in stdout
    assert "suspect" in stdout  # estimator summary line
    checked, errors = check_trace(trace)
    assert errors == []
    assert checked > 80
    payload = json.loads(report.read_text())
    assert payload["mode"] == "single"
    assert payload["adapt"]["policy"] == "adaptive"
    assert set(payload) >= {"oblivious", "adaptive", "plan"}


def test_single_run_defaults_to_a_degraded_plan(capsys):
    code, stdout, _ = run_cli(capsys, *FAST, "--scheduler", "lcf_dist_rr")
    assert code == 0
    assert "fault plan:" in stdout
    assert "reaction:" in stdout


def test_reaction_flags_reach_the_config(capsys):
    code, stdout, _ = run_cli(
        capsys, *FAST, "--mode", "ewma", "--probe-interval", "8",
        "--link-down", "0:1:10:40",
    )
    assert code == 0
    assert "ewma" in stdout
    assert "probe every 8" in stdout


def test_grid_mode_writes_comparison_artifacts(tmp_path, capsys):
    csv = tmp_path / "adapt.csv"
    report = tmp_path / "adapt.json"
    code, stdout, _ = run_cli(
        capsys,
        *FAST,
        "--schedulers", "lcf_dist_rr",
        "--availability-grid", "1.0,0.8",
        "--cache-dir", str(tmp_path / "cache"),
        "--csv", str(csv), "--json", str(report),
    )
    assert code == 0
    assert "adaptive vs oblivious" in stdout
    assert csv.read_text().count("\n") >= 4
    payload = json.loads(report.read_text())
    assert payload["mode"] == "availability"
    assert payload["adapt"]["policy"] == "adaptive"
    # one row per (scheduler, availability, stance)
    assert len(payload["rows"]) == 1 * 2 * 2


# -- negative paths ----------------------------------------------------------


def test_negative_seed_rejected(capsys):
    code, _, stderr = run_cli(capsys, "--seed", "-1")
    assert code == 2
    assert "--seed" in stderr


def test_zero_ports_rejected(capsys):
    code, _, stderr = run_cli(capsys, "--ports", "0")
    assert code == 2
    assert "--ports" in stderr


def test_empty_availability_grid_rejected(capsys):
    code, _, stderr = run_cli(capsys, "--availability-grid", ",")
    assert code == 2
    assert "no values" in stderr


def test_invalid_reaction_config_rejected(capsys):
    code, _, stderr = run_cli(capsys, *FAST, "--probe-interval", "0")
    assert code == 2
    assert "invalid reaction config" in stderr


def test_invalid_fault_plan_rejected(capsys):
    code, _, stderr = run_cli(capsys, *FAST, "--availability", "1.5")
    assert code == 2
    assert "invalid fault plan" in stderr


def test_special_switch_rejected_in_both_modes(capsys):
    code, _, stderr = run_cli(capsys, *FAST, "--scheduler", "fifo")
    assert code == 2
    assert "fifo" in stderr
    code, _, stderr = run_cli(
        capsys, *FAST, "--schedulers", "fifo,lcf_dist_rr",
        "--availability-grid", "1.0",
    )
    assert code == 2
    assert "fifo" in stderr


def test_failed_run_leaves_no_artifacts(tmp_path, capsys):
    report = tmp_path / "never.json"
    code, _, _ = run_cli(
        capsys, *FAST, "--availability", "1.5", "--json", str(report)
    )
    assert code == 2
    assert not report.exists()
    assert list(tmp_path.iterdir()) == []
