"""Fastpath registry: coverage, fallback, and constructor keywords."""

import pytest

from repro.baselines.registry import available_schedulers, make_scheduler
from repro.fastpath.islip import FastISLIP
from repro.fastpath.lcf import FastLCFCentral, FastLCFCentralRR
from repro.fastpath.lcf_dist import FastLCFDistributed, FastLCFDistributedRR
from repro.fastpath.pim import FastPIM
from repro.fastpath.registry import (
    FAST_SCHEDULER_NAMES,
    fast_schedulers,
    has_fast_kernel,
    make_fast_scheduler,
)


def test_fast_names_are_a_subset_of_the_registry():
    assert FAST_SCHEDULER_NAMES <= set(available_schedulers())


def test_fast_schedulers_lists_the_kernels_sorted():
    assert fast_schedulers() == tuple(sorted(FAST_SCHEDULER_NAMES))
    assert set(fast_schedulers()) == {
        "islip",
        "lcf_central",
        "lcf_central_rr",
        "lcf_dist",
        "lcf_dist_rr",
        "pim",
    }


@pytest.mark.parametrize(
    ("name", "cls"),
    [
        ("lcf_central", FastLCFCentral),
        ("lcf_central_rr", FastLCFCentralRR),
        ("lcf_dist", FastLCFDistributed),
        ("lcf_dist_rr", FastLCFDistributedRR),
        ("islip", FastISLIP),
        ("pim", FastPIM),
    ],
)
def test_covered_names_resolve_to_bitset_kernels(name, cls):
    assert has_fast_kernel(name)
    scheduler = make_fast_scheduler(name, 8)
    assert isinstance(scheduler, cls)
    assert scheduler.n == 8
    # The fast twin keeps the registry name so results stay comparable.
    assert scheduler.name == make_scheduler(name, 8).name


@pytest.mark.parametrize("name", ["lqf", "wfront", "ocf"])
def test_uncovered_names_fall_back_to_the_reference(name):
    assert not has_fast_kernel(name)
    fast = make_fast_scheduler(name, 4)
    assert type(fast) is type(make_scheduler(name, 4))


def test_unknown_names_raise_like_the_reference_registry():
    with pytest.raises(KeyError):
        make_fast_scheduler("no_such_scheduler", 4)


def test_constructor_keywords_are_honoured():
    islip = make_fast_scheduler("islip", 8, iterations=2)
    assert islip.iterations == 2
    pim = make_fast_scheduler("pim", 8, iterations=3, seed=7)
    assert pim.iterations == 3
    assert pim.seed == 7
    dist = make_fast_scheduler("lcf_dist", 8, iterations=2)
    assert dist.iterations == 2
    dist_rr = make_fast_scheduler("lcf_dist_rr", 8, iterations=6)
    assert dist_rr.iterations == 6
