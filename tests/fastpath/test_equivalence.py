"""Bit-identity of the fastpath kernels against their reference twins.

The fastpath layer's entire contract is "same results, faster": every
covered scheduler must emit the exact schedule its reference twin emits,
slot after slot, with identical internal state evolution (round-robin
offsets, iSLIP pointers, PIM's random stream) and identical decision
traces. The fast tier checks the kernels pairwise on random matrix
sequences; the ``slow``-marked sweep drives whole simulations — every
registry scheduler crossed with fault plans — and requires equal
statistics rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.registry import (
    SPECIAL_SWITCH_NAMES,
    available_schedulers,
    make_scheduler,
)
from repro.fastpath.registry import fast_schedulers, make_fast_scheduler
from repro.faults import FaultPlan, PortDownInterval
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation

FAST_NAMES = fast_schedulers()


@st.composite
def matrix_runs(draw, min_n=1, max_n=8, max_len=10):
    """A switch width and a sequence of request matrices at that width."""
    n = draw(st.integers(min_n, max_n))
    length = draw(st.integers(1, max_len))
    matrices = [
        draw(arrays(np.bool_, (n, n), elements=st.booleans()))
        for _ in range(length)
    ]
    return n, matrices


def make_pair(name, n):
    return make_scheduler(name, n), make_fast_scheduler(name, n)


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", FAST_NAMES)
    @given(run=matrix_runs())
    @settings(max_examples=40, deadline=None)
    def test_schedules_and_state_bit_identical(self, name, run):
        n, matrices = run
        reference, fast = make_pair(name, n)
        for matrix in matrices:
            expected = reference.schedule(matrix)
            copy = matrix.copy()
            actual = fast.schedule(copy)
            assert np.array_equal(expected, actual)
            # The fast entry point skips the defensive copy; it must
            # still leave the caller's matrix untouched.
            assert (copy == matrix).all()
        if name in ("lcf_central", "lcf_central_rr"):
            assert fast.rr_offsets == reference.rr_offsets
        if name in ("islip", "lcf_dist", "lcf_dist_rr"):
            for ref_ptr, fast_ptr in zip(reference.pointers, fast.pointers):
                assert np.array_equal(ref_ptr, fast_ptr)

    @pytest.mark.parametrize("name", ["lcf_central", "lcf_central_rr"])
    @given(run=matrix_runs(min_n=2, max_n=6, max_len=6))
    @settings(max_examples=25, deadline=None)
    def test_decision_traces_bit_identical(self, name, run):
        n, matrices = run
        reference, fast = make_pair(name, n)
        reference.record_trace = fast.record_trace = True
        for matrix in matrices:
            reference.schedule(matrix)
            fast.schedule(matrix)
            assert len(fast.last_trace) == len(reference.last_trace)
            for ref_step, fast_step in zip(reference.last_trace, fast.last_trace):
                assert fast_step.output == ref_step.output
                assert fast_step.rr_row == ref_step.rr_row
                assert fast_step.granted == ref_step.granted
                assert fast_step.rr_won == ref_step.rr_won
                assert np.array_equal(fast_step.nrq_before, ref_step.nrq_before)

    @pytest.mark.parametrize("name", ["lcf_dist", "lcf_dist_rr"])
    @given(run=matrix_runs(min_n=2, max_n=6, max_len=6))
    @settings(max_examples=25, deadline=None)
    def test_distributed_iteration_traces_bit_identical(self, name, run):
        n, matrices = run
        reference, fast = make_pair(name, n)
        reference.record_trace = fast.record_trace = True
        for matrix in matrices:
            reference.schedule(matrix)
            fast.schedule(matrix)
            assert len(fast.last_trace) == len(reference.last_trace)
            for ref_it, fast_it in zip(reference.last_trace, fast.last_trace):
                assert np.array_equal(fast_it.requests, ref_it.requests)
                assert np.array_equal(fast_it.nrq, ref_it.nrq)
                assert np.array_equal(fast_it.grants, ref_it.grants)
                assert np.array_equal(fast_it.ngt, ref_it.ngt)
                assert fast_it.accepts == ref_it.accepts

    @pytest.mark.parametrize("name", ["lcf_dist", "lcf_dist_rr"])
    @given(
        run=matrix_runs(min_n=2, max_n=6, max_len=6),
        request_loss=st.floats(0.0, 0.6),
        grant_loss=st.floats(0.0, 0.6),
        accept_loss=st.floats(0.0, 0.6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_lossy_channel_composition_bit_identical(
        self, name, run, request_loss, grant_loss, accept_loss, seed
    ):
        # The faithful per-message lossy protocol and its bitset twin
        # must agree cycle for cycle: schedules AND iteration traces,
        # including the stale sender-side nrq advisory under loss.
        from repro.faults.channel import make_lossy_scheduler
        from repro.faults.injector import FaultInjector

        n, matrices = run
        plan = FaultPlan(
            request_loss=request_loss,
            grant_loss=grant_loss,
            accept_loss=accept_loss,
        )
        reference = make_lossy_scheduler(
            name, n, FaultInjector(plan, n, seed=seed), fast=False
        )
        fast = make_lossy_scheduler(
            name, n, FaultInjector(plan, n, seed=seed), fast=True
        )
        reference.record_trace = fast.record_trace = True
        for matrix in matrices:
            assert np.array_equal(reference.schedule(matrix), fast.schedule(matrix))
            assert len(fast.last_trace) == len(reference.last_trace)
            for ref_it, fast_it in zip(reference.last_trace, fast.last_trace):
                assert np.array_equal(fast_it.requests, ref_it.requests)
                assert np.array_equal(fast_it.nrq, ref_it.nrq)
                assert np.array_equal(fast_it.grants, ref_it.grants)
                assert np.array_equal(fast_it.ngt, ref_it.ngt)
                assert fast_it.accepts == ref_it.accepts
            for ref_ptr, fast_ptr in zip(reference.pointers, fast.pointers):
                assert np.array_equal(ref_ptr, fast_ptr)

    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_reset_rewinds_both_twins_to_the_same_state(self, name):
        rng = np.random.default_rng(5)
        reference, fast = make_pair(name, 6)
        first_run = []
        for _ in range(20):
            matrix = rng.random((6, 6)) < 0.5
            first_run.append(matrix)
            reference.schedule(matrix)
            fast.schedule(matrix)
        reference.reset()
        fast.reset()
        for matrix in first_run:
            assert np.array_equal(reference.schedule(matrix), fast.schedule(matrix))

    def test_fig3_worked_example(self, fig3_requests):
        # The paper's Figure 3 allocation, via both layers.
        reference, fast = make_pair("lcf_central", 4)
        assert np.array_equal(
            reference.schedule(fig3_requests), fast.schedule(fig3_requests)
        )

    @given(st.integers(1, 30), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_pim_stream_premise_choice_equals_bounded_integers(self, mask, seed):
        # FastPIM's bit-identity rests on rng.choice over a 1-D index
        # array consuming the stream exactly like one bounded integers()
        # draw. Pin that numpy contract explicitly.
        indices = np.flatnonzero(
            np.array([mask >> j & 1 for j in range(5)], dtype=bool)
        )
        a = np.random.default_rng(seed).choice(indices)
        b = indices[int(np.random.default_rng(seed).integers(0, len(indices)))]
        assert a == b


class TestWordBoundaryEquivalence:
    """The multi-word dispatch must be seamless across the 64-bit edge:
    one bit below, exactly at, one bit above, and two full words."""

    @pytest.mark.parametrize("name", FAST_NAMES)
    @pytest.mark.parametrize("n", [63, 64, 65, 128])
    def test_schedules_bit_identical_at_word_boundaries(self, name, n):
        rng = np.random.default_rng(n)
        reference, fast = make_pair(name, n)
        for _ in range(3):
            matrix = rng.random((n, n)) < rng.uniform(0.1, 0.9)
            assert np.array_equal(reference.schedule(matrix), fast.schedule(matrix))

    @pytest.mark.parametrize("name", ["lcf_dist", "lcf_dist_rr"])
    def test_distributed_traces_bit_identical_across_the_boundary(self, name):
        n = 65
        rng = np.random.default_rng(1)
        reference, fast = make_pair(name, n)
        reference.record_trace = fast.record_trace = True
        matrix = rng.random((n, n)) < 0.3
        reference.schedule(matrix)
        fast.schedule(matrix)
        assert len(fast.last_trace) == len(reference.last_trace)
        for ref_it, fast_it in zip(reference.last_trace, fast.last_trace):
            assert np.array_equal(fast_it.requests, ref_it.requests)
            assert np.array_equal(fast_it.nrq, ref_it.nrq)
            assert np.array_equal(fast_it.grants, ref_it.grants)
            assert np.array_equal(fast_it.ngt, ref_it.ngt)
            assert fast_it.accepts == ref_it.accepts


CROSSBAR_SCHEDULERS = tuple(
    name for name in available_schedulers() if name not in SPECIAL_SWITCH_NAMES
)


def fault_plans(n=4, horizon=60):
    """Null, topology, message-loss, and combined plans."""
    return st.one_of(
        st.just(None),
        st.just(FaultPlan(port_down=(PortDownInterval(n - 1, 10, 30, "input"),))),
        st.floats(0.05, 0.4).map(lambda p: FaultPlan(request_loss=p)),
        st.floats(0.5, 0.95).map(
            lambda a: FaultPlan.availability(n, a, period=horizon // 2)
        ),
        st.floats(0.05, 0.3).map(
            lambda p: FaultPlan(
                port_down=(PortDownInterval(0, 5, 25, "output"),),
                request_loss=p,
                grant_loss=p,
            )
        ),
    )


@pytest.mark.slow
@given(
    scheduler=st.sampled_from(CROSSBAR_SCHEDULERS),
    plan=fault_plans(),
    load=st.floats(0.2, 1.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_full_simulation_equivalence_sweep(scheduler, plan, load, seed):
    """fast=True is bit-identical end to end, fault plans included.

    Covers the whole registry: covered names exercise the bitset kernels
    (and the fast slot loop when uninstrumented), uncovered names prove
    the fallback changes nothing.
    """
    config = SimConfig(n_ports=4, warmup_slots=10, measure_slots=50, seed=seed)
    reference = run_simulation(
        config, scheduler, load, faults=plan, collect_percentiles=True
    )
    fast = run_simulation(
        config, scheduler, load, faults=plan, collect_percentiles=True, fast=True
    )
    assert reference.row() == fast.row()
