"""The switch's zero-allocation fast slot loop.

Engagement rules (the loop must only run when it is exactly equivalent
to the instrumented loop), bit-identity of whole runs, and the
degraded-mode wrapper interaction: the type-level capability probe must
never let attribute forwarding smuggle an unfiltered ``schedule_masks``
past a loss filter.
"""

import numpy as np
import pytest

from repro.adapt import AdaptiveLCF
from repro.baselines.registry import make_scheduler
from repro.faults import FaultInjector, FaultPlan, PortDownInterval
from repro.faults.channel import FastRequestLossFilter, RequestLossFilter
from repro.fastpath.lcf import FastLCFCentralRR
from repro.fastpath.registry import fast_schedulers
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.crossbar import InputQueuedSwitch
from repro.sim.simulator import build_switch, run_simulation

CONFIG = SimConfig(n_ports=4, warmup_slots=10, measure_slots=60, seed=9)


class TestEngagement:
    def test_bare_bitset_kernel_takes_the_fast_loop(self):
        switch = InputQueuedSwitch(CONFIG, FastLCFCentralRR(4))
        assert switch._fast_slot

    def test_reference_scheduler_does_not(self):
        switch = InputQueuedSwitch(CONFIG, make_scheduler("lcf_central_rr", 4))
        assert not switch._fast_slot

    def test_instrumentation_disables_the_fast_loop(self):
        switch = InputQueuedSwitch(
            CONFIG, FastLCFCentralRR(4), tracer=RingTracer(1 << 10)
        )
        assert not switch._fast_slot

    def test_topology_faults_disable_the_fast_loop(self):
        plan = FaultPlan(port_down=(PortDownInterval(1, 5, 20, "input"),))
        switch = InputQueuedSwitch(
            CONFIG, FastLCFCentralRR(4), injector=FaultInjector(plan, 4, seed=1)
        )
        assert not switch._fast_slot

    def test_adapter_disables_the_fast_loop(self):
        switch = InputQueuedSwitch(CONFIG, FastLCFCentralRR(4), adapter=AdaptiveLCF())
        assert not switch._fast_slot

    def test_weight_scheduler_never_takes_the_fast_loop(self):
        switch = InputQueuedSwitch(CONFIG, make_scheduler("lqf", 4))
        assert not switch._fast_slot

    def test_forwarded_schedule_masks_does_not_fool_the_probe(self):
        # The plain RequestLossFilter forwards unknown attributes to the
        # wrapped scheduler, so instances *appear* to have
        # schedule_masks — taking the fast loop through that forwarding
        # would skip the loss model entirely. The probe is type-level
        # exactly so this wrapper stays on the instrumented loop.
        injector = FaultInjector(FaultPlan(request_loss=0.3), 4, seed=1)
        wrapped = RequestLossFilter(FastLCFCentralRR(4), injector)
        assert callable(wrapped.schedule_masks)  # forwarding is live...
        assert not InputQueuedSwitch(CONFIG, wrapped)._fast_slot  # ...ignored

    def test_fast_loss_filter_takes_the_fast_loop_with_its_own_kernel(self):
        # FastRequestLossFilter defines schedule_masks on the class, so
        # the fast loop runs *through* the loss model, never around it.
        switch = build_switch(
            CONFIG,
            "lcf_central_rr",
            injector=FaultInjector(FaultPlan(request_loss=0.3), 4, seed=1),
            fast=True,
        )
        assert isinstance(switch.scheduler, FastRequestLossFilter)
        assert switch._fast_slot


class TestRunEquivalence:
    @pytest.mark.parametrize("name", fast_schedulers())
    def test_fast_run_is_bit_identical(self, name):
        reference = run_simulation(CONFIG, name, 0.8, collect_percentiles=True)
        fast = run_simulation(CONFIG, name, 0.8, collect_percentiles=True, fast=True)
        assert reference.row() == fast.row()

    @pytest.mark.parametrize("name", ["lcf_central_rr", "islip", "pim"])
    def test_request_loss_is_applied_on_the_fast_loop(self, name):
        plan = FaultPlan(request_loss=0.3)
        reference = run_simulation(CONFIG, name, 0.9, faults=plan)
        fast = run_simulation(CONFIG, name, 0.9, faults=plan, fast=True)
        assert reference.row() == fast.row()
        # The loss model must actually bite, or the equality above would
        # also pass with the filter bypassed on both sides.
        pristine = run_simulation(CONFIG, name, 0.9, fast=True)
        assert fast.row() != pristine.row()

    def test_fast_run_with_service_matrix_matches(self):
        # collect_service keeps the fast loop on; the per-pair grant
        # counts must match the instrumented loop's.
        reference = run_simulation(CONFIG, "lcf_central_rr", 0.8, collect_service=True)
        fast = run_simulation(
            CONFIG, "lcf_central_rr", 0.8, collect_service=True, fast=True
        )
        assert np.array_equal(reference.service_counts, fast.service_counts)

    def test_traced_fast_run_matches_reference_trace(self):
        # A tracer forces the instrumented loop, but the scheduler is
        # still the bitset kernel — its telemetry (decision traces and
        # events) must be byte-identical to the reference scheduler's.
        def traced(fast):
            tracer = RingTracer(1 << 16)
            run_simulation(CONFIG, "lcf_central_rr", 0.8, tracer=tracer, fast=fast)
            return tracer.events

        assert traced(fast=True) == traced(fast=False)


class TestFastLoopStatistics:
    def test_schedules_applied_per_slot_match(self):
        from repro.traffic.bernoulli import BernoulliUniform

        fast = InputQueuedSwitch(CONFIG, FastLCFCentralRR(4))
        reference = InputQueuedSwitch(CONFIG, make_scheduler("lcf_central_rr", 4))
        assert fast._fast_slot and not reference._fast_slot
        fast.measuring = reference.measuring = True
        pattern = BernoulliUniform(4, 0.9, seed=3)
        for slot in range(200):
            arrivals = pattern.arrivals()
            applied_ref = reference.step(slot, arrivals)
            applied_fast = fast.step(slot, arrivals)
            assert np.array_equal(applied_ref, applied_fast), slot
        assert fast.forwarded == reference.forwarded
        assert fast.offered == reference.offered
        assert fast.latency.mean == reference.latency.mean
        assert fast.total_queued() == reference.total_queued()
