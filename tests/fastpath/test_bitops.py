"""Bitmask primitives: packing, cyclic selection, k-th set bit —
single-word and the multi-word (``n > 64``) word-tuple twins."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fastpath.bitops import (
    WORD_BITS,
    derive_cols,
    derive_cols_words,
    full_words,
    int_to_words,
    next_at_or_after,
    next_at_or_after_words,
    pack_cols,
    pack_cols_words,
    pack_rows,
    pack_rows_words,
    popcount_words,
    select_kth_bit,
    select_kth_bit_words,
    unpack_rows,
    unpack_rows_words,
    word_count,
    words_to_int,
)
from repro.core.base import rotating_argmin
from repro.fastpath.bitops import rotating_argmin_words
from tests.conftest import request_matrices

#: The widths that matter for multi-word layout bugs: one bit below,
#: exactly at, one bit above the 64-bit word boundary, and two words.
BOUNDARY_WIDTHS = (63, 64, 65, 128)


def naive_pack_rows(matrix):
    return [
        sum(1 << j for j in range(matrix.shape[1]) if matrix[i, j])
        for i in range(matrix.shape[0])
    ]


class TestPacking:
    @given(request_matrices(max_n=8))
    def test_pack_rows_matches_naive(self, matrix):
        assert pack_rows(matrix) == naive_pack_rows(matrix)

    @given(request_matrices(max_n=8))
    def test_pack_cols_is_pack_rows_of_transpose(self, matrix):
        assert pack_cols(matrix) == pack_rows(matrix.T)

    @given(request_matrices(max_n=8))
    def test_unpack_roundtrip(self, matrix):
        n = matrix.shape[0]
        assert (unpack_rows(pack_rows(matrix), n) == matrix).all()

    @given(request_matrices(max_n=8))
    def test_derive_cols_matches_direct_packing(self, matrix):
        n = matrix.shape[0]
        assert derive_cols(pack_rows(matrix), n) == pack_cols(matrix)

    @pytest.mark.parametrize("n", [63, 64, 65, 80, 100])
    def test_wide_matrices_use_same_layout(self, n):
        # n=65+ exercises the packbits fallback; n<=64 the uint64 dot.
        rng = np.random.default_rng(n)
        matrix = rng.random((n, n)) < 0.5
        assert pack_rows(matrix) == naive_pack_rows(matrix)
        assert pack_cols(matrix) == naive_pack_rows(matrix.T)
        assert (unpack_rows(pack_rows(matrix), n) == matrix).all()

    def test_accepts_int_matrices(self):
        matrix = np.array([[1, 0], [1, 1]])
        assert pack_rows(matrix) == [0b01, 0b11]
        assert pack_cols(matrix) == [0b11, 0b10]

    def test_lsb_is_column_zero(self):
        matrix = np.zeros((4, 4), dtype=bool)
        matrix[2, 0] = True
        assert pack_rows(matrix) == [0, 0, 1, 0]


class TestNextAtOrAfter:
    @given(
        st.integers(1, 20).flatmap(
            lambda n: st.tuples(
                st.just(n), st.integers(1, (1 << n) - 1), st.integers(0, n - 1)
            )
        )
    )
    def test_matches_naive_cyclic_scan(self, case):
        n, mask, start = case
        expected = next(
            (start + k) % n for k in range(n) if mask >> ((start + k) % n) & 1
        )
        assert next_at_or_after(mask, start, n) == expected

    def test_wraps_past_the_top_bit(self):
        assert next_at_or_after(0b0010, start=3, n=4) == 1

    def test_start_itself_wins_when_set(self):
        assert next_at_or_after(0b1010, start=1, n=4) == 1

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            next_at_or_after(0, start=0, n=4)


class TestMultiWord:
    @pytest.mark.parametrize("n", BOUNDARY_WIDTHS)
    def test_word_count_and_full_words(self, n):
        words = word_count(n)
        assert words == (n + WORD_BITS - 1) // WORD_BITS
        full = full_words(n)
        assert len(full) == words
        assert words_to_int(full) == (1 << n) - 1

    @given(st.integers(1, 200).flatmap(lambda n: st.tuples(st.just(n), st.integers(0, (1 << n) - 1))))
    def test_int_words_roundtrip(self, case):
        n, mask = case
        words = int_to_words(mask, n)
        assert len(words) == word_count(n)
        assert all(0 <= w < (1 << WORD_BITS) for w in words)
        assert words_to_int(words) == mask
        assert popcount_words(words) == mask.bit_count()

    @pytest.mark.parametrize("n", BOUNDARY_WIDTHS)
    def test_packing_words_matches_single_word_layout(self, n):
        rng = np.random.default_rng(n)
        matrix = rng.random((n, n)) < 0.5
        rows = pack_rows_words(matrix)
        assert [words_to_int(r) for r in rows] == pack_rows(matrix)
        assert [words_to_int(c) for c in pack_cols_words(matrix)] == pack_cols(matrix)
        assert (unpack_rows_words(rows, n) == matrix).all()
        assert derive_cols_words(rows, n) == pack_cols_words(matrix)

    @pytest.mark.parametrize("n", BOUNDARY_WIDTHS)
    def test_bit_j_lives_at_expected_word_and_offset(self, n):
        # One-hot matrices pin the LSB-first within/across-words layout.
        for j in sorted({0, WORD_BITS - 1, WORD_BITS, n - 1} & set(range(n))):
            matrix = np.zeros((n, n), dtype=bool)
            matrix[1, j] = True
            rows = pack_rows_words(matrix)
            assert rows[1][j >> 6] == 1 << (j & 63)
            assert sum(sum(r) for r in rows) == 1 << (j & 63)

    @given(
        st.integers(2, 200).flatmap(
            lambda n: st.tuples(
                st.just(n), st.integers(1, (1 << n) - 1), st.integers(0, n - 1)
            )
        )
    )
    def test_next_at_or_after_words_matches_single_word(self, case):
        n, mask, start = case
        words = int_to_words(mask, n)
        assert next_at_or_after_words(words, start, n) == next_at_or_after(
            mask, start, n
        )

    def test_next_at_or_after_words_empty_raises(self):
        with pytest.raises(ValueError):
            next_at_or_after_words([0, 0], 3, 128)

    @given(st.integers(1, (1 << 130) - 1), st.data())
    def test_select_kth_bit_words_matches_single_word(self, mask, data):
        k = data.draw(st.integers(0, mask.bit_count() - 1))
        assert select_kth_bit_words(int_to_words(mask, 130), k) == select_kth_bit(
            mask, k
        )

    def test_select_kth_bit_words_out_of_range_raises(self):
        with pytest.raises(IndexError):
            select_kth_bit_words([0b101, 0], 2)

    @given(
        st.integers(2, 150).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.integers(0, (1 << n) - 1),
                st.integers(0, n - 1),
                st.integers(0, 2**32),
            )
        )
    )
    def test_rotating_argmin_words_matches_reference(self, case):
        n, cand_mask, start, key_seed = case
        rng = np.random.default_rng(key_seed)
        # Keys in [1, n], like every NRQ/NGT vector the kernels feed in
        # (the scan's sentinel is n + 1, so larger keys are out of
        # contract — they could never arise from a choice count).
        keys = rng.integers(1, n + 1, size=n)
        candidates = np.array([cand_mask >> i & 1 for i in range(n)], dtype=bool)
        words = int_to_words(cand_mask, n)
        actual = rotating_argmin_words(
            [int(k) for k in keys], words, start, n
        )
        if not cand_mask:
            assert actual == -1
        else:
            assert actual == rotating_argmin(keys, candidates, start)


class TestSelectKthBit:
    @given(st.integers(1, (1 << 20) - 1), st.data())
    def test_matches_flatnonzero_indexing(self, mask, data):
        indices = [j for j in range(20) if mask >> j & 1]
        k = data.draw(st.integers(0, len(indices) - 1))
        assert select_kth_bit(mask, k) == indices[k]

    def test_k_out_of_range_raises(self):
        with pytest.raises(IndexError):
            select_kth_bit(0b101, 2)
