"""Bitmask primitives: packing, cyclic selection, k-th set bit."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fastpath.bitops import (
    derive_cols,
    next_at_or_after,
    pack_cols,
    pack_rows,
    select_kth_bit,
    unpack_rows,
)
from tests.conftest import request_matrices


def naive_pack_rows(matrix):
    return [
        sum(1 << j for j in range(matrix.shape[1]) if matrix[i, j])
        for i in range(matrix.shape[0])
    ]


class TestPacking:
    @given(request_matrices(max_n=8))
    def test_pack_rows_matches_naive(self, matrix):
        assert pack_rows(matrix) == naive_pack_rows(matrix)

    @given(request_matrices(max_n=8))
    def test_pack_cols_is_pack_rows_of_transpose(self, matrix):
        assert pack_cols(matrix) == pack_rows(matrix.T)

    @given(request_matrices(max_n=8))
    def test_unpack_roundtrip(self, matrix):
        n = matrix.shape[0]
        assert (unpack_rows(pack_rows(matrix), n) == matrix).all()

    @given(request_matrices(max_n=8))
    def test_derive_cols_matches_direct_packing(self, matrix):
        n = matrix.shape[0]
        assert derive_cols(pack_rows(matrix), n) == pack_cols(matrix)

    @pytest.mark.parametrize("n", [63, 64, 65, 80, 100])
    def test_wide_matrices_use_same_layout(self, n):
        # n=65+ exercises the packbits fallback; n<=64 the uint64 dot.
        rng = np.random.default_rng(n)
        matrix = rng.random((n, n)) < 0.5
        assert pack_rows(matrix) == naive_pack_rows(matrix)
        assert pack_cols(matrix) == naive_pack_rows(matrix.T)
        assert (unpack_rows(pack_rows(matrix), n) == matrix).all()

    def test_accepts_int_matrices(self):
        matrix = np.array([[1, 0], [1, 1]])
        assert pack_rows(matrix) == [0b01, 0b11]
        assert pack_cols(matrix) == [0b11, 0b10]

    def test_lsb_is_column_zero(self):
        matrix = np.zeros((4, 4), dtype=bool)
        matrix[2, 0] = True
        assert pack_rows(matrix) == [0, 0, 1, 0]


class TestNextAtOrAfter:
    @given(
        st.integers(1, 20).flatmap(
            lambda n: st.tuples(
                st.just(n), st.integers(1, (1 << n) - 1), st.integers(0, n - 1)
            )
        )
    )
    def test_matches_naive_cyclic_scan(self, case):
        n, mask, start = case
        expected = next(
            (start + k) % n for k in range(n) if mask >> ((start + k) % n) & 1
        )
        assert next_at_or_after(mask, start, n) == expected

    def test_wraps_past_the_top_bit(self):
        assert next_at_or_after(0b0010, start=3, n=4) == 1

    def test_start_itself_wins_when_set(self):
        assert next_at_or_after(0b1010, start=1, n=4) == 1

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            next_at_or_after(0, start=0, n=4)


class TestSelectKthBit:
    @given(st.integers(1, (1 << 20) - 1), st.data())
    def test_matches_flatnonzero_indexing(self, mask, data):
        indices = [j for j in range(20) if mask >> j & 1]
        k = data.draw(st.integers(0, len(indices) - 1))
        assert select_kth_bit(mask, k) == indices[k]

    def test_k_out_of_range_raises(self):
        with pytest.raises(IndexError):
            select_kth_bit(0b101, 2)
