"""Perf-report plumbing: measurement, serialisation, regression checks."""

import json

import pytest

from repro.fastpath.bench import (
    REPORT_VERSION,
    check_min_speedups,
    compare_reports,
    iter_cells,
    load_report,
    measure_pair,
    request_pool,
    run_speed_suite,
    write_report,
)


def make_report(speedups):
    """Minimal report with the given {(name, n): speedup} cells."""
    schedulers: dict = {}
    for (name, n), speedup in speedups.items():
        schedulers.setdefault(name, {})[str(n)] = {
            "reference_slots_per_sec": 1000.0,
            "fast_slots_per_sec": 1000.0 * speedup,
            "speedup": speedup,
        }
    return {"version": REPORT_VERSION, "schedulers": schedulers}


class TestMeasurement:
    def test_request_pool_is_deterministic(self):
        a, b = request_pool(8), request_pool(8)
        assert all((x == y).all() for x, y in zip(a, b))

    def test_measure_pair_shape(self):
        # Tiny cycle counts: this checks plumbing, not performance.
        cell = measure_pair("lcf_central", 4, cycles=5, repeats=2, warmup_cycles=2)
        assert set(cell) == {
            "reference_slots_per_sec",
            "fast_slots_per_sec",
            "speedup",
        }
        assert cell["reference_slots_per_sec"] > 0
        assert cell["fast_slots_per_sec"] > 0

    def test_run_speed_suite_covers_requested_cells(self):
        lines = []
        report = run_speed_suite(
            names=("islip",),
            sizes=(4,),
            cycles=5,
            repeats=2,
            warmup_cycles=2,
            progress=lines.append,
        )
        assert [(n, s) for n, s, _ in iter_cells(report)] == [("islip", 4)]
        assert len(lines) == 1
        assert report["version"] == REPORT_VERSION


class TestSerialisation:
    def test_write_load_roundtrip(self, tmp_path):
        report = make_report({("islip", 16): 2.0})
        path = tmp_path / "report.json"
        write_report(report, path)
        assert load_report(path) == report

    def test_load_rejects_unknown_versions(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"version": REPORT_VERSION + 1}))
        with pytest.raises(ValueError):
            load_report(path)

    def test_iter_cells_orders_by_name_then_width(self):
        report = make_report(
            {("pim", 16): 1.0, ("islip", 32): 1.0, ("islip", 4): 1.0}
        )
        assert [(n, s) for n, s, _ in iter_cells(report)] == [
            ("islip", 4),
            ("islip", 32),
            ("pim", 16),
        ]


class TestCompareReports:
    def test_within_tolerance_passes(self):
        baseline = make_report({("islip", 16): 4.0})
        current = make_report({("islip", 16): 3.0})
        assert compare_reports(baseline, current, tolerance=0.30) == []

    def test_drop_beyond_tolerance_fails(self):
        baseline = make_report({("islip", 16): 4.0})
        current = make_report({("islip", 16): 2.0})
        failures = compare_reports(baseline, current, tolerance=0.30)
        assert len(failures) == 1
        assert "islip n=16" in failures[0]

    def test_missing_cell_is_a_regression(self):
        baseline = make_report({("islip", 16): 4.0, ("pim", 16): 4.0})
        current = make_report({("islip", 16): 4.0})
        failures = compare_reports(baseline, current)
        assert failures == ["pim n=16: missing from current report"]

    def test_extra_cells_are_allowed(self):
        baseline = make_report({("islip", 16): 4.0})
        current = make_report({("islip", 16): 4.0, ("islip", 32): 0.1})
        assert compare_reports(baseline, current) == []

    def test_improvements_always_pass(self):
        baseline = make_report({("islip", 16): 2.0})
        current = make_report({("islip", 16): 9.0})
        assert compare_reports(baseline, current) == []


class TestMinSpeedups:
    def test_floor_met(self):
        report = make_report({("lcf_central_rr", 16): 3.5})
        assert check_min_speedups(report, {("lcf_central_rr", 16): 3.0}) == []

    def test_floor_violated(self):
        report = make_report({("lcf_central_rr", 16): 2.5})
        failures = check_min_speedups(report, {("lcf_central_rr", 16): 3.0})
        assert len(failures) == 1
        assert "below the required 3x floor" in failures[0]

    def test_unmeasured_floor_fails(self):
        failures = check_min_speedups(make_report({}), {("islip", 16): 2.0})
        assert failures == ["islip n=16: not measured, floor 2x unchecked"]


class TestCommittedBaseline:
    def test_repo_baseline_loads_and_meets_the_claimed_floor(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_speed.json"
        report = load_report(path)
        assert check_min_speedups(report, {("lcf_central_rr", 16): 3.0}) == []
        # Every fastpath kernel is present at the standard widths.
        measured = {(name, n) for name, n, _ in iter_cells(report)}
        from repro.fastpath.bench import DEFAULT_SIZES
        from repro.fastpath.registry import fast_schedulers

        for name in fast_schedulers():
            for n in DEFAULT_SIZES:
                assert (name, n) in measured
