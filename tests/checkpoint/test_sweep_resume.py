"""Interrupted sweeps resume without recomputing completed points.

The :class:`~repro.sweep.runner.ParallelRunner` contract under test:
with ``checkpoint_every`` set, a killed sweep leaves (a) cache entries
for completed points and (b) a checkpoint file for the in-flight point
at ``<cache root>/<point key>.ckpt``. A re-run serves the former from
cache and *resumes* the latter mid-point — and both paths merge to the
exact statistics of an uninterrupted, uncached sweep.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import load_checkpoint, resume_simulation
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation
from repro.sweep.cache import ResultCache, point_key
from repro.sweep.runner import ParallelRunner
from repro.sweep.spec import SweepSpec


def _spec(replicates: int = 1) -> SweepSpec:
    return SweepSpec(
        schedulers=("lcf_central_rr", "islip"),
        loads=(0.6, 0.9),
        config=SimConfig(n_ports=4, warmup_slots=10, measure_slots=110, seed=31),
        replicates=replicates,
    )


class TestRunnerValidation:
    def test_checkpoint_every_requires_cache(self):
        with pytest.raises(ValueError, match="cache"):
            ParallelRunner(checkpoint_every=25)

    def test_checkpoint_every_positive(self, tmp_path):
        with pytest.raises(ValueError, match=">= 1"):
            ParallelRunner(cache=tmp_path, checkpoint_every=0)


class TestSweepResume:
    def test_preempted_point_resumes_mid_flight(self, tmp_path):
        spec = _spec()
        baseline = ParallelRunner().run(spec)
        points = spec.points()
        cache = ResultCache(tmp_path / "cache")
        keys = [point_key(spec.config, p) for p in points]

        # Simulate a kill: the first point completed (cache entry
        # written), the second was pre-empted mid-run (checkpoint file
        # left behind, no cache entry), the rest never started.
        done = ParallelRunner(cache=cache).run(
            SweepSpec(
                schedulers=(points[0].scheduler,),
                loads=(points[0].load,),
                config=spec.config,
            )
        )
        assert done.report.computed == 1
        preempted = points[1]
        ckpt = cache.root / f"{keys[1]}.ckpt"
        run_simulation(
            spec.point_config(preempted),
            preempted.scheduler,
            preempted.load,
            checkpoint_path=ckpt,
            stop_at_slot=60,
        )
        assert load_checkpoint(ckpt)["slot"] == 60

        rerun = ParallelRunner(cache=cache, checkpoint_every=25).run(spec)
        # Completed point came from cache, nothing was recomputed twice.
        assert rerun.report.cache_hits == 1
        assert rerun.report.computed == len(points) - 1
        # The checkpoint was consumed and cleaned up.
        assert not ckpt.exists()
        # Merged statistics are bit-identical to the uninterrupted run.
        for key, merged in baseline.merged.items():
            assert rerun.merged[key].row() == merged.row()

    def test_resumed_point_matches_straight_run(self, tmp_path):
        # The same guarantee at the single-point level, via the exact
        # runner fallback path: resume_simulation on the .ckpt file.
        config = SimConfig(n_ports=4, warmup_slots=10, measure_slots=110, seed=32)
        straight = run_simulation(config, "lcf_central_rr", 0.9)
        ckpt = tmp_path / "point.ckpt"
        run_simulation(
            config, "lcf_central_rr", 0.9, checkpoint_path=ckpt, stop_at_slot=45
        )
        assert resume_simulation(ckpt).row() == straight.row()

    def test_corrupt_checkpoint_falls_back_to_fresh_run(self, tmp_path):
        spec = _spec()
        baseline = ParallelRunner().run(spec)
        cache = ResultCache(tmp_path / "cache")
        keys = [point_key(spec.config, p) for p in spec.points()]
        # A kill mid-write can truncate the checkpoint; the runner must
        # recompute from scratch, not crash or resume garbage.
        bad = cache.root / f"{keys[0]}.ckpt"
        bad.write_text('{"format": "repro-checkpoint", "vers')
        rerun = ParallelRunner(cache=cache, checkpoint_every=25).run(spec)
        assert rerun.report.computed == len(keys)
        assert not bad.exists()
        for key, merged in baseline.merged.items():
            assert rerun.merged[key].row() == merged.row()

    def test_completed_sweep_leaves_no_checkpoints(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ParallelRunner(cache=cache, checkpoint_every=25).run(_spec())
        assert not list(cache.root.glob("*.ckpt"))

    def test_second_run_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        first = ParallelRunner(cache=cache, checkpoint_every=25).run(spec)
        second = ParallelRunner(cache=cache, checkpoint_every=25).run(spec)
        assert second.report.cache_hits == second.report.total_points
        assert second.report.computed == 0
        for key, merged in first.merged.items():
            assert second.merged[key].row() == merged.row()

    def test_shed_round_trips_through_cache(self, tmp_path):
        # SimResult.shed is part of the cached payload; a cache hit
        # must carry it back unchanged.
        config = SimConfig(
            n_ports=4, warmup_slots=0, measure_slots=120,
            voq_capacity=8, pq_capacity=16, seed=33,
        )
        direct = run_simulation(
            config, "lcf_central_rr", 1.0, admission=(10, 30)
        )
        assert direct.shed > 0
        cache = ResultCache(tmp_path / "cache")
        cache.put("point", direct)
        assert cache.get("point").shed == direct.shed
