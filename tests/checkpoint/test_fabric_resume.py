"""Fabric checkpoints: per-shard snapshots at barrier slots resume
bit-identically, for any shard count."""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import CheckpointError, load_checkpoint
from repro.checkpoint.state import encode_value
from repro.fabric import FabricSpec, resume_fabric, run_fabric
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig


def _norm(result) -> str:
    return json.dumps(encode_value(result.row()), sort_keys=True)


def _spec(**overrides) -> FabricSpec:
    kwargs = dict(
        m=2, k=2, r=2,
        config=SimConfig(n_ports=4, warmup_slots=10, measure_slots=80, seed=11),
        load=0.9,
    )
    kwargs.update(overrides)
    return FabricSpec(**kwargs)


class TestFabricResume:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_resume_matches_straight_run(self, shards, tmp_path):
        spec = _spec(link_delay=2)
        straight_tracer = RingTracer(1 << 20)
        straight = run_fabric(spec, shards=shards, tracer=straight_tracer)
        ckpt = tmp_path / "fab.ckpt"
        run_fabric(
            spec, shards=shards, tracer=RingTracer(1 << 20),
            checkpoint_path=ckpt, stop_at_slot=45,
        )
        resumed_tracer = RingTracer(1 << 20)
        resumed = resume_fabric(ckpt, tracer=resumed_tracer)
        assert _norm(resumed) == _norm(straight)
        # The shard trace buffers are checkpointed, so the resumed
        # merged trace is the COMPLETE stream, not just the tail.
        assert list(resumed_tracer.events) == list(straight_tracer.events)

    def test_faulted_adaptive_fast_fabric(self, tmp_path):
        spec = _spec(
            stage_faults=((1, 0, (("link_down", ((0, 1, 20, 60),)),)),),
            stage_adapt=((1, 0, (("policy", "adaptive"),)),),
        )
        straight = run_fabric(spec, shards=2, fast=True)
        ckpt = tmp_path / "fab.ckpt"
        run_fabric(
            spec, shards=2, fast=True,
            checkpoint_path=ckpt, checkpoint_every=16, stop_at_slot=48,
        )
        assert _norm(resume_fabric(ckpt)) == _norm(straight)

    def test_periodic_checkpoints_land_on_barriers(self, tmp_path):
        spec = _spec(
            link_delay=3,
            config=SimConfig(n_ports=4, warmup_slots=0, measure_slots=64, seed=3),
        )
        straight = run_fabric(spec, shards=2)
        ckpt = tmp_path / "fab.ckpt"
        run_fabric(spec, shards=2, checkpoint_path=ckpt, checkpoint_every=20)
        # Cadence 20 with blocks capped at barriers: the last periodic
        # checkpoint before completion is at slot 60.
        assert load_checkpoint(ckpt)["slot"] == 60
        assert _norm(resume_fabric(ckpt)) == _norm(straight)

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.sim.simulator import run_simulation

        ckpt = tmp_path / "sim.ckpt"
        run_simulation(
            SimConfig(n_ports=4, warmup_slots=0, measure_slots=40, seed=1),
            "islip", 0.7, checkpoint_path=ckpt, stop_at_slot=20,
        )
        with pytest.raises(CheckpointError, match="fabric"):
            resume_fabric(ckpt)

    def test_validation(self, tmp_path):
        spec = _spec()
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_fabric(spec, checkpoint_every=10)
        with pytest.raises(ValueError, match="inline"):
            run_fabric(
                spec, shards=2, backend="process",
                checkpoint_path=tmp_path / "x.ckpt", checkpoint_every=10,
            )
        with pytest.raises(ValueError, match="metrics"):
            from repro.obs.metrics import MetricsRegistry

            run_fabric(
                spec, metrics=MetricsRegistry(),
                checkpoint_path=tmp_path / "x.ckpt", checkpoint_every=10,
            )
