"""Property: resume from a checkpoint ≡ never stopping.

The contract under test is *bit-identity*: a run checkpointed at any
slot ``k`` and resumed produces exactly the statistics, the trace
events, and the RNG stream positions of the uninterrupted run — for
every registry scheduler, on the reference and fastpath layers, under
any fault plan.

The fast tier samples the space with small Hypothesis budgets; the
``slow`` tier sweeps the full scheduler × fastpath cross-product.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint import load_checkpoint, resume_simulation
from repro.fastpath.registry import fast_schedulers, has_fast_kernel
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation

#: Crossbar registry names (``fifo`` uses the dedicated switch model,
#: exercised separately below).
CROSSBAR_SCHEDULERS = (
    "greedy", "islip", "lcf_central", "lcf_central_rr", "lcf_dist",
    "lcf_dist_rr", "lqf", "ocf", "pim", "random", "wfront",
)

FAULT_PLANS = st.sampled_from([
    None,
    (("request_loss", 0.1), ("grant_loss", 0.05)),
    (("port_down", ((1, 20, 60, "output"),)),),
    (("link_down", ((0, 1, 10, 50),)), ("port_down", ((2, 30, 70, "input"),))),
])


def _config(seed: int, warmup: int = 10, measure: int = 90) -> SimConfig:
    return SimConfig(
        n_ports=4, warmup_slots=warmup, measure_slots=measure, seed=seed
    )


def _assert_resume_identical(
    config: SimConfig,
    scheduler: str,
    stop_at: int,
    tmp_path,
    *,
    load: float = 0.8,
    fast: bool = False,
    faults=None,
    adapter=None,
    admission=None,
) -> None:
    kwargs = dict(faults=faults, adapter=adapter, admission=admission, fast=fast)
    straight_tracer = RingTracer(1 << 20)
    straight = run_simulation(
        config, scheduler, load, tracer=straight_tracer, **kwargs
    )
    ckpt = tmp_path / "run.ckpt"
    part1 = RingTracer(1 << 20)
    run_simulation(
        config, scheduler, load, tracer=part1,
        checkpoint_path=ckpt, stop_at_slot=stop_at, **kwargs,
    )
    part2 = RingTracer(1 << 20)
    resumed = resume_simulation(ckpt, tracer=part2)
    assert resumed.row() == straight.row()
    assert list(part1.events) + list(part2.events) == list(straight_tracer.events)


class TestRoundtripFastTier:
    """Cheap per-scheduler coverage for tier-1 CI."""

    @pytest.mark.parametrize("scheduler", CROSSBAR_SCHEDULERS)
    def test_mid_measurement_checkpoint(self, scheduler, tmp_path):
        _assert_resume_identical(_config(seed=3), scheduler, 55, tmp_path)

    @pytest.mark.parametrize("scheduler", fast_schedulers())
    def test_fastpath_twin(self, scheduler, tmp_path):
        _assert_resume_identical(
            _config(seed=4), scheduler, 55, tmp_path, fast=True
        )

    @pytest.mark.parametrize("name", ["fifo", "outbuf"])
    def test_dedicated_switch_models(self, name, tmp_path):
        config = _config(seed=5)
        straight = run_simulation(config, name, 0.7)
        ckpt = tmp_path / "run.ckpt"
        run_simulation(config, name, 0.7, checkpoint_path=ckpt, stop_at_slot=40)
        assert resume_simulation(ckpt).row() == straight.row()

    @settings(max_examples=10, deadline=None)
    @given(
        scheduler=st.sampled_from(("lcf_central_rr", "lcf_dist_rr", "pim")),
        stop_at=st.integers(min_value=1, max_value=99),
        faults=FAULT_PLANS,
        fast=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_any_slot_any_plan(
        self, scheduler, stop_at, faults, fast, seed, tmp_path_factory
    ):
        tmp = tmp_path_factory.mktemp("ckpt")
        _assert_resume_identical(
            _config(seed=seed), scheduler, stop_at, tmp,
            fast=fast, faults=faults,
        )

    def test_warmup_boundary_checkpoint(self, tmp_path):
        # Pausing exactly at the warmup/measurement boundary must
        # restore the measuring flag correctly on resume.
        config = _config(seed=6, warmup=30, measure=70)
        _assert_resume_identical(config, "lcf_central_rr", 30, tmp_path)

    def test_adaptive_estimator_state_survives(self, tmp_path):
        _assert_resume_identical(
            _config(seed=7, warmup=0, measure=120), "lcf_dist_rr", 65, tmp_path,
            faults=(("port_down", ((1, 20, 80, "output"),)),),
            adapter={"policy": "adaptive"},
        )

    def test_admission_counters_survive(self, tmp_path):
        config = SimConfig(
            n_ports=4, warmup_slots=0, measure_slots=150,
            voq_capacity=8, pq_capacity=16, seed=8,
        )
        _assert_resume_identical(
            config, "lcf_central_rr", 70, tmp_path,
            load=1.0, admission=(10, 30),
        )

    def test_rng_stream_position_restored(self, tmp_path):
        # Two checkpoints of the same run at the same later slot — one
        # straight-through, one through an intermediate resume — must
        # hold byte-identical payloads, PCG64 stream state included.
        config = _config(seed=9)
        ck_a = tmp_path / "a.ckpt"
        run_simulation(
            config, "pim", 0.8, checkpoint_path=ck_a, stop_at_slot=80
        )
        ck_b = tmp_path / "b.ckpt"
        run_simulation(
            config, "pim", 0.8, checkpoint_path=ck_b, stop_at_slot=40
        )
        resume_simulation(ck_b, checkpoint_path=ck_b, stop_at_slot=80)
        pa, pb = load_checkpoint(ck_a), load_checkpoint(ck_b)
        pa["run"]["checkpoint_every"] = pb["run"]["checkpoint_every"] = None
        assert json.dumps(pa, sort_keys=True) == json.dumps(pb, sort_keys=True)

    def test_metrics_registry_restored(self, tmp_path):
        config = _config(seed=10)
        m_straight = MetricsRegistry()
        run_simulation(config, "lcf_central_rr", 0.8, metrics=m_straight)
        ckpt = tmp_path / "run.ckpt"
        run_simulation(
            config, "lcf_central_rr", 0.8, metrics=MetricsRegistry(),
            checkpoint_path=ckpt, stop_at_slot=50,
        )
        m_resumed = MetricsRegistry()
        resume_simulation(ckpt, metrics=m_resumed)
        from repro.obs.serve import render_openmetrics

        assert render_openmetrics(m_resumed) == render_openmetrics(m_straight)

    def test_periodic_checkpoints_resume_from_latest(self, tmp_path):
        # checkpoint_every without stop_at: kill-anytime crash
        # recovery. The file left behind is the latest boundary; a
        # resume completes with the uninterrupted statistics.
        config = _config(seed=11)
        straight = run_simulation(config, "islip", 0.8)
        ckpt = tmp_path / "run.ckpt"
        run_simulation(
            config, "islip", 0.8, checkpoint_path=ckpt, checkpoint_every=16
        )
        # The completed run leaves its last periodic checkpoint (slot 96).
        payload = load_checkpoint(ckpt)
        assert payload["slot"] == 96
        assert resume_simulation(ckpt).row() == straight.row()


@pytest.mark.slow
class TestRoundtripFullCrossProduct:
    """Every crossbar scheduler × fastpath × plan × random slots."""

    @pytest.mark.parametrize("scheduler", CROSSBAR_SCHEDULERS)
    @pytest.mark.parametrize("fast", [False, True])
    def test_scheduler_cross_product(self, scheduler, fast, tmp_path):
        if fast and not has_fast_kernel(scheduler):
            pytest.skip(f"{scheduler} has no fast kernel")
        for stop_at in (1, 10, 37, 99):
            _assert_resume_identical(
                _config(seed=21), scheduler, stop_at, tmp_path, fast=fast
            )

    @settings(max_examples=60, deadline=None)
    @given(
        scheduler=st.sampled_from(CROSSBAR_SCHEDULERS),
        stop_at=st.integers(min_value=1, max_value=119),
        faults=FAULT_PLANS,
        fast=st.booleans(),
        adaptive=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_exhaustive_property(
        self, scheduler, stop_at, faults, fast, adaptive, seed, tmp_path_factory
    ):
        if fast and not has_fast_kernel(scheduler):
            fast = False
        tmp = tmp_path_factory.mktemp("ckpt")
        _assert_resume_identical(
            SimConfig(n_ports=4, warmup_slots=20, measure_slots=100, seed=seed),
            scheduler, stop_at, tmp,
            fast=fast, faults=faults,
            adapter={"policy": "adaptive"} if adaptive else None,
        )
