"""The golden checkpoint pin: regenerating it must be a byte no-op.

Drives ``tools/check_checkpoint_format.py`` the same way CI does. A
failure here means the on-disk checkpoint schema drifted — re-golden
with ``--update`` only when the change is deliberate, and bump
``CHECKPOINT_VERSION`` when it breaks old files.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
GOLDEN = REPO_ROOT / "tests" / "data" / "golden_checkpoint.json"


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "check_checkpoint_format",
        REPO_ROOT / "tools" / "check_checkpoint_format.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_golden_checkpoint_matches(capsys):
    tool = _load_tool()
    assert tool.main([]) == 0
    assert "matches" in capsys.readouterr().out


def test_golden_is_valid_envelope():
    from repro.checkpoint import CHECKPOINT_VERSION, load_checkpoint

    payload = load_checkpoint(GOLDEN)
    envelope = json.loads(GOLDEN.read_text())
    assert envelope["version"] == CHECKPOINT_VERSION
    assert payload["kind"] == "simulation"
    # The pin exercises every serialised subsystem at once.
    run = payload["run"]
    assert run["faults"], "golden run must be faulted"
    assert run["adapt"], "golden run must be adaptive"
    assert run["admission"], "golden run must be admission-controlled"
    assert run["has_metrics"], "golden run must carry metrics"
    assert payload["state"]["metrics"], "metrics snapshot must be present"


def test_golden_resumes_to_completion(tmp_path):
    # The pinned file is not just stable bytes — it is a *live*
    # checkpoint that resumes and finishes.
    import shutil

    from repro.checkpoint import resume_simulation
    from repro.obs.metrics import MetricsRegistry

    working = tmp_path / "golden.ckpt"
    shutil.copy(GOLDEN, working)
    result = resume_simulation(working, metrics=MetricsRegistry())
    assert result.forwarded > 0
    assert result.shed >= 0


def test_divergence_reports_diff(tmp_path, capsys, monkeypatch):
    tool = _load_tool()
    tampered = tmp_path / "golden_checkpoint.json"
    envelope = json.loads(GOLDEN.read_text())
    envelope["payload"]["slot"] += 1
    tampered.write_text(json.dumps(envelope, sort_keys=True))
    monkeypatch.setattr(tool, "GOLDEN", tampered)
    monkeypatch.setattr(tool, "REPO_ROOT", tmp_path)
    assert tool.main([]) == 1
    assert "DIVERGED" in capsys.readouterr().err
