"""Crash safety: corrupt checkpoints are rejected, never resumed.

Covers the integrity layer (:mod:`repro.checkpoint.format`): every
tamper mode — truncation, bit flips, version/format forgery, checksum
mismatch — must raise :class:`CheckpointError`; the CLIs must map that
to exit status 2; and :func:`repro.ioutil.atomic_write_text` must never
leave a partial artifact behind.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    payload_checksum,
    resume_simulation,
    save_checkpoint,
)
from repro.ioutil import atomic_write_text
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation


@pytest.fixture
def checkpoint(tmp_path):
    """A real mid-run checkpoint file to corrupt."""
    path = tmp_path / "run.ckpt"
    config = SimConfig(n_ports=4, warmup_slots=5, measure_slots=45, seed=13)
    run_simulation(
        config, "lcf_central_rr", 0.8, checkpoint_path=path, stop_at_slot=25
    )
    return path


class TestEnvelopeValidation:
    def test_valid_file_loads(self, checkpoint):
        payload = load_checkpoint(checkpoint)
        assert payload["kind"] == "simulation"
        assert payload["slot"] == 25

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")

    @pytest.mark.parametrize("keep", [0, 1, 10, 100])
    def test_truncated_file(self, checkpoint, keep):
        text = checkpoint.read_text()
        assert keep < len(text)
        checkpoint.write_text(text[:keep])
        with pytest.raises(CheckpointError):
            load_checkpoint(checkpoint)

    def test_bit_flip_in_payload(self, checkpoint):
        # Flip one digit inside the serialised state; the checksum
        # must catch it even though the JSON still parses.
        envelope = json.loads(checkpoint.read_text())
        envelope["payload"]["slot"] += 1
        checkpoint.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(checkpoint)

    def test_wrong_format_name(self, checkpoint):
        envelope = json.loads(checkpoint.read_text())
        envelope["format"] = "not-a-checkpoint"
        checkpoint.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(checkpoint)

    def test_future_version_rejected(self, checkpoint):
        envelope = json.loads(checkpoint.read_text())
        envelope["version"] = CHECKPOINT_VERSION + 1
        checkpoint.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(checkpoint)

    def test_non_object_document(self, checkpoint):
        checkpoint.write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(CheckpointError, match="JSON object"):
            load_checkpoint(checkpoint)

    def test_missing_payload(self, checkpoint):
        checkpoint.write_text(json.dumps(
            {"format": CHECKPOINT_FORMAT, "version": CHECKPOINT_VERSION}
        ))
        with pytest.raises(CheckpointError, match="payload"):
            load_checkpoint(checkpoint)

    def test_forged_checksum_of_tampered_payload(self, checkpoint):
        # Even a re-checksummed tamper loads only if internally
        # consistent — which it is; this documents that the checksum
        # guards against *corruption*, not malice.
        envelope = json.loads(checkpoint.read_text())
        envelope["payload"]["slot"] = 26
        envelope["checksum"] = payload_checksum(envelope["payload"])
        checkpoint.write_text(json.dumps(envelope))
        assert load_checkpoint(checkpoint)["slot"] == 26

    def test_wrong_kind_rejected_by_resume(self, tmp_path):
        path = save_checkpoint(tmp_path / "x.ckpt", {"kind": "mystery"})
        with pytest.raises(CheckpointError, match="kind"):
            resume_simulation(path)


class TestCLIExitStatus:
    """All three checkpoint-aware CLIs exit 2 on a corrupt file."""

    @pytest.fixture
    def corrupt(self, checkpoint):
        text = checkpoint.read_text()
        checkpoint.write_text(text[: len(text) // 2])
        return str(checkpoint)

    def test_lcf_trace_resume(self, corrupt, capsys):
        from repro.obs.cli import main

        assert main(["--resume", corrupt]) == 2
        assert "checkpoint" in capsys.readouterr().err.lower()

    def test_lcf_faults_resume(self, corrupt, capsys):
        from repro.faults.cli import main

        assert main(["--resume", corrupt]) == 2
        assert "checkpoint" in capsys.readouterr().err.lower()

    def test_lcf_adapt_resume(self, corrupt, capsys):
        from repro.adapt.cli import main

        assert main(["--resume", corrupt]) == 2
        assert "checkpoint" in capsys.readouterr().err.lower()


class TestAtomicWrite:
    def test_no_partial_on_failure(self, tmp_path):
        # A failing write leaves the previous file intact and no
        # temp-file litter next to it.
        target = tmp_path / "artifact.json"
        target.write_text("previous good content")
        with pytest.raises(TypeError):
            atomic_write_text(target, object())  # write_text rejects non-str
        assert target.read_text() == "previous good content"
        assert list(tmp_path.iterdir()) == [target]

    def test_save_checkpoint_overwrites_atomically(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, {"kind": "simulation", "slot": 1})
        save_checkpoint(path, {"kind": "simulation", "slot": 2})
        assert load_checkpoint(path)["slot"] == 2
        assert list(tmp_path.iterdir()) == [path]

    def test_unserialisable_payload_keeps_previous(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, {"kind": "simulation", "slot": 7})
        with pytest.raises(TypeError):
            save_checkpoint(path, {"bad": object()})
        assert load_checkpoint(path)["slot"] == 7
        assert list(tmp_path.iterdir()) == [path]
