"""Shared types and conversions."""

import numpy as np
import pytest

from repro.types import NO_GRANT, as_request_matrix, empty_schedule


class TestEmptySchedule:
    def test_all_no_grant(self):
        schedule = empty_schedule(5)
        assert schedule.shape == (5,)
        assert (schedule == NO_GRANT).all()
        assert schedule.dtype == np.int64

    def test_independent_instances(self):
        a, b = empty_schedule(3), empty_schedule(3)
        a[0] = 1
        assert b[0] == NO_GRANT


class TestAsRequestMatrix:
    def test_bool_passthrough(self):
        matrix = np.eye(3, dtype=bool)
        out = as_request_matrix(matrix)
        assert out.dtype == np.bool_
        assert (out == matrix).all()

    def test_int_coercion(self):
        out = as_request_matrix([[1, 0], [2, 0]])
        assert out.dtype == np.bool_
        assert out[1, 0]

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            as_request_matrix(np.ones((2, 3)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError):
            as_request_matrix(np.ones(4))
