"""Clint network end-to-end: pipeline timing, delivery, error paths."""

import numpy as np
import pytest

from repro.clint.network import ClintNetwork
from repro.traffic.base import NO_ARRIVAL
from repro.traffic.bernoulli import BernoulliUniform


def one_arrival(n, src, dst):
    arrivals = np.full(n, NO_ARRIVAL, dtype=np.int64)
    arrivals[src] = dst
    return arrivals


class TestPipelineTiming:
    def test_three_stage_pipeline(self):
        """Figure 5: cfg/gnt in slot c, breq in c+1, back in c+2."""
        net = ClintNetwork(4)
        net.step(0, bulk_arrivals=one_arrival(4, 0, 2))
        assert net.hosts[2].bulk_received == 0  # still in transfer stage
        net.step(1)
        assert net.hosts[2].bulk_received == 1  # transferred in slot c+1
        assert net.hosts[0].acks_received == 0
        net.step(2)
        assert net.hosts[0].acks_received == 1  # acked in slot c+2

    def test_min_bulk_latency_is_two_slots(self):
        # One slot for scheduling + one for transfer.
        net = ClintNetwork(4)
        net.step(0, bulk_arrivals=one_arrival(4, 1, 3))
        net.step(1)
        assert net.stats.bulk_latencies == [2]

    def test_pipeline_overlaps(self):
        # Back-to-back packets from the same VOQ depart once per slot.
        net = ClintNetwork(4)
        net.step(0, bulk_arrivals=one_arrival(4, 0, 1))
        net.step(1, bulk_arrivals=one_arrival(4, 0, 1))
        net.step(2)
        net.step(3)
        assert net.hosts[1].bulk_received == 2


class TestDelivery:
    def test_every_request_is_acknowledged(self):
        net = ClintNetwork(8, seed=1)
        stats = net.run(300, bulk_traffic=BernoulliUniform(8, 0.4, seed=2))
        assert stats.acks_delivered == stats.bulk_delivered

    def test_conservation_after_drain(self):
        net = ClintNetwork(8, seed=1)
        traffic = BernoulliUniform(8, 0.3, seed=3)
        offered = 0
        for slot in range(200):
            arrivals = traffic.arrivals()
            offered += int((arrivals != NO_ARRIVAL).sum())
            net.step(slot, bulk_arrivals=arrivals)
        # Drain: run without new arrivals until VOQs empty.
        slot = 200
        while net.backlog() and slot < 1000:
            net.step(slot)
            slot += 1
        net.step(slot)
        net.step(slot + 1)
        assert net.stats.bulk_delivered == offered

    def test_quick_traffic_delivered_or_dropped(self):
        net = ClintNetwork(8, seed=1)
        stats = net.run(
            200, quick_traffic=BernoulliUniform(8, 0.8, seed=4)
        )
        sent = sum(h.quick_sent for h in net.hosts)
        assert stats.quick_delivered + stats.quick_dropped == sent
        assert stats.quick_dropped > 0  # load 0.8 must collide sometimes


class TestErrorPath:
    def test_cfg_corruption_is_detected_not_fatal(self):
        net = ClintNetwork(4, cfg_loss_rate=0.3, seed=5)
        stats = net.run(300, bulk_traffic=BernoulliUniform(4, 0.3, seed=6))
        assert stats.cfg_crc_errors > 0
        assert stats.bulk_delivered > 0  # the network keeps working

    def test_error_free_run_has_no_crc_errors(self):
        net = ClintNetwork(4, cfg_loss_rate=0.0, seed=7)
        stats = net.run(100, bulk_traffic=BernoulliUniform(4, 0.5, seed=8))
        assert stats.cfg_crc_errors == 0

    def test_corruption_slows_but_does_not_stop_delivery(self):
        clean = ClintNetwork(4, cfg_loss_rate=0.0, seed=9)
        lossy = ClintNetwork(4, cfg_loss_rate=0.5, seed=9)
        traffic_a = BernoulliUniform(4, 0.6, seed=10)
        traffic_b = BernoulliUniform(4, 0.6, seed=10)
        stats_clean = clean.run(300, bulk_traffic=traffic_a)
        stats_lossy = lossy.run(300, bulk_traffic=traffic_b)
        assert 0 < stats_lossy.bulk_delivered < stats_clean.bulk_delivered


class TestMulticast:
    def test_precalc_multicast_delivers_to_all_targets(self):
        net = ClintNetwork(8)
        net.hosts[3].request_multicast([1, 5, 6], slot=0)
        for slot in range(3):
            net.step(slot)
        assert net.hosts[1].bulk_received == 1
        assert net.hosts[5].bulk_received == 1
        assert net.hosts[6].bulk_received == 1
        assert net.stats.multicast_deliveries == 3

    def test_multicast_coexists_with_unicast(self):
        net = ClintNetwork(8)
        net.hosts[3].request_multicast([1, 5], slot=0)
        net.step(0, bulk_arrivals=one_arrival(8, 0, 2))
        net.step(1)
        net.step(2)
        assert net.hosts[1].bulk_received == 1
        assert net.hosts[5].bulk_received == 1
        assert net.hosts[2].bulk_received == 1

    def test_mean_latency_statistic(self):
        net = ClintNetwork(4, seed=11)
        stats = net.run(200, bulk_traffic=BernoulliUniform(4, 0.2, seed=12))
        assert stats.mean_bulk_latency >= 2.0


class TestGrantErrorPath:
    def test_grant_corruption_detected_and_reported(self):
        net = ClintNetwork(4, gnt_loss_rate=0.3, seed=13)
        stats = net.run(300, bulk_traffic=BernoulliUniform(4, 0.5, seed=14))
        assert stats.gnt_crc_errors > 0
        assert stats.bulk_delivered > 0  # retried grants eventually land

    def test_lost_grant_leaves_packet_queued_for_retry(self):
        # With a lossy grant path nothing is ever lost end to end: the
        # ungranted packet stays in its VOQ and is re-requested.
        net = ClintNetwork(4, gnt_loss_rate=0.5, seed=15)
        traffic = BernoulliUniform(4, 0.3, seed=16)
        offered = 0
        for slot in range(200):
            arrivals = traffic.arrivals()
            offered += int((arrivals != NO_ARRIVAL).sum())
            net.step(slot, bulk_arrivals=arrivals)
        slot = 200
        while net.backlog() and slot < 2000:
            net.step(slot)
            slot += 1
        net.step(slot, quiesce=True)
        net.step(slot + 1, quiesce=True)
        assert net.stats.bulk_delivered == offered

    def test_clean_grant_path_has_no_errors(self):
        net = ClintNetwork(4, gnt_loss_rate=0.0, seed=17)
        stats = net.run(100, bulk_traffic=BernoulliUniform(4, 0.5, seed=18))
        assert stats.gnt_crc_errors == 0
