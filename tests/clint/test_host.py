"""Clint host adapter."""

import pytest

from repro.clint.host import ClintHost
from repro.clint.packets import GrantPacket, mask_to_vector


class TestHost:
    def test_config_reflects_voq_occupancy(self):
        host = ClintHost(0, 4)
        host.enqueue_bulk(2, slot=0)
        host.enqueue_bulk(3, slot=0)
        config = host.make_config()
        assert mask_to_vector(config.req, 4) == [False, False, True, True]

    def test_voq_capacity_enforced(self):
        host = ClintHost(0, 4, voq_capacity=1)
        assert host.enqueue_bulk(1, 0)
        assert not host.enqueue_bulk(1, 1)
        assert host.bulk_dropped == 1

    def test_grant_pops_voq_and_emits_request(self):
        host = ClintHost(1, 4)
        host.enqueue_bulk(3, slot=5)
        grant = GrantPacket(node_id=1, gnt=3, gnt_val=True)
        requests = host.handle_grant(grant)
        assert len(requests) == 1
        assert requests[0].src == 1 and requests[0].dst == 3
        assert requests[0].t_generated == 5
        assert not host.voqs[3]

    def test_invalid_grant_sends_nothing(self):
        host = ClintHost(1, 4)
        host.enqueue_bulk(3, slot=5)
        assert host.handle_grant(GrantPacket(node_id=1, gnt_val=False)) == []
        assert len(host.voqs[3]) == 1

    def test_grant_errors_counted(self):
        host = ClintHost(0, 4)
        host.handle_grant(GrantPacket(node_id=0, crc_err=True))
        host.handle_grant(GrantPacket(node_id=0, link_err=True))
        assert host.grant_errors == 2

    def test_multicast_request_appears_in_config(self):
        host = ClintHost(2, 8)
        host.request_multicast([1, 5], slot=0)
        config = host.make_config()
        assert mask_to_vector(config.pre, 8) == [
            False, True, False, False, False, True, False, False
        ]

    def test_multicast_grant_emits_one_request_per_target(self):
        host = ClintHost(2, 8)
        host.request_multicast([1, 5], slot=0)
        requests = host.handle_grant(
            GrantPacket(node_id=2, gnt_val=False), multicast_targets=[1, 5]
        )
        assert {r.dst for r in requests} == {1, 5}
        payloads = {r.payload_id for r in requests}
        assert len(payloads) == 1  # the same packet, multicast

    def test_multicast_cleared_after_transmission(self):
        host = ClintHost(2, 8)
        host.request_multicast([1], slot=0)
        host.handle_grant(GrantPacket(node_id=2, gnt_val=False), multicast_targets=[1])
        assert host.pending_precalc == 0

    def test_receive_bulk_records_latency_and_acks(self):
        from repro.clint.packets import BulkRequest

        host = ClintHost(3, 4)
        ack = host.receive_bulk(BulkRequest(src=0, dst=3, t_generated=2, payload_id=9), slot=4)
        assert host.bulk_received == 1
        assert host.received_latencies == [3]
        assert ack.src == 3 and ack.dst == 0 and ack.payload_id == 9

    def test_node_id_bounds(self):
        with pytest.raises(ValueError):
            ClintHost(4, 4)
        with pytest.raises(ValueError):
            ClintHost(0, 17)
