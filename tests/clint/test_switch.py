"""Clint switch: bulk scheduling with CRC handling, quick collisions."""

import numpy as np
import pytest

from repro.clint.packets import ConfigPacket, QuickPacket
from repro.clint.switch import ClintSwitch


def configs_for(switch_n, requests):
    """Build packed config packets from a request matrix."""
    packets = []
    for i in range(switch_n):
        mask = 0
        for j in range(switch_n):
            if requests[i][j]:
                mask |= 1 << j
        packets.append(ConfigPacket(req=mask).pack())
    return packets


class TestBulkScheduling:
    def test_grants_follow_lcf(self):
        switch = ClintSwitch(4)
        requests = [[0, 0, 1, 0], [0, 0, 0, 0], [0, 0, 0, 0], [0, 0, 0, 0]]
        grants, result = switch.schedule_bulk(configs_for(4, requests))
        assert grants[0].gnt_val and grants[0].gnt == 2
        assert not grants[1].gnt_val

    def test_corrupt_config_sets_crc_err_and_zeroes_requests(self):
        switch = ClintSwitch(4)
        packets = configs_for(4, [[1, 0, 0, 0]] * 4)
        corrupted = bytearray(packets[2])
        corrupted[4] ^= 0xFF
        packets[2] = bytes(corrupted)
        grants, result = switch.schedule_bulk(packets)
        assert grants[2].crc_err
        assert not grants[2].gnt_val  # its requests were dropped
        assert switch.cfg_crc_errors == 1

    def test_missing_config_treated_as_error(self):
        switch = ClintSwitch(4)
        packets = configs_for(4, [[0] * 4] * 4)
        packets[1] = None
        grants, _ = switch.schedule_bulk(packets)
        assert grants[1].crc_err

    def test_crc_err_clears_after_one_grant(self):
        switch = ClintSwitch(4)
        packets = configs_for(4, [[0] * 4] * 4)
        first, _ = switch.schedule_bulk([None] + packets[1:])
        assert first[0].crc_err
        second, _ = switch.schedule_bulk(packets)
        assert not second[0].crc_err

    def test_link_error_reported_once(self):
        switch = ClintSwitch(4)
        switch.note_link_error(3)
        packets = configs_for(4, [[0] * 4] * 4)
        first, _ = switch.schedule_bulk(packets)
        assert first[3].link_err
        second, _ = switch.schedule_bulk(packets)
        assert not second[3].link_err

    def test_ben_mask_fences_off_host(self):
        switch = ClintSwitch(4)
        packets = configs_for(4, [[0, 1, 0, 0]] * 4)
        # Host 3 vetoes host 0 via its ben field.
        veto = ConfigPacket(req=0, ben=0xFFFF & ~1).pack()
        packets[3] = veto
        grants, _ = switch.schedule_bulk(packets)
        assert not grants[0].gnt_val  # host 0 disabled


class TestQuickChannel:
    def test_no_collision_delivers_all(self):
        switch = ClintSwitch(4)
        packets = [QuickPacket(0, 1, 0, 0), QuickPacket(2, 3, 0, 1)]
        delivered, dropped = switch.forward_quick(packets)
        assert len(delivered) == 2 and not dropped

    def test_collision_drops_losers(self):
        switch = ClintSwitch(4)
        packets = [QuickPacket(i, 0, 0, i) for i in range(3)]
        delivered, dropped = switch.forward_quick(packets)
        assert len(delivered) == 1 and len(dropped) == 2
        assert switch.quick_drops == 2

    def test_collision_winner_rotates(self):
        switch = ClintSwitch(2)
        winners = []
        for _ in range(4):
            packets = [QuickPacket(0, 1, 0, 0), QuickPacket(1, 1, 0, 1)]
            delivered, _ = switch.forward_quick(packets)
            winners.append(delivered[0].src)
        assert set(winners) == {0, 1}


class TestQuickEnableMask:
    def test_qen_fences_quick_traffic(self):
        switch = ClintSwitch(4)
        # Host 3's cfg vetoes host 0 on the quick channel.
        packets = [ConfigPacket(req=0).pack()] * 3 + [
            ConfigPacket(req=0, qen=0xFFFF & ~1).pack()
        ]
        switch.schedule_bulk(packets)
        delivered, dropped = switch.forward_quick(
            [QuickPacket(0, 1, 0, 0), QuickPacket(2, 3, 0, 1)]
        )
        assert [p.src for p in delivered] == [2]
        assert [p.src for p in dropped] == [0]
        assert switch.quick_fenced == 1

    def test_qen_default_allows_everyone(self):
        switch = ClintSwitch(4)
        switch.schedule_bulk([ConfigPacket(req=0).pack()] * 4)
        delivered, dropped = switch.forward_quick([QuickPacket(0, 1, 0, 0)])
        assert len(delivered) == 1 and not dropped

    def test_fence_lifts_when_mask_restored(self):
        switch = ClintSwitch(4)
        veto = [ConfigPacket(req=0, qen=0xFFFF & ~1).pack()] * 4
        switch.schedule_bulk(veto)
        delivered, _ = switch.forward_quick([QuickPacket(0, 1, 0, 0)])
        assert not delivered
        switch.schedule_bulk([ConfigPacket(req=0).pack()] * 4)
        delivered, _ = switch.forward_quick([QuickPacket(0, 1, 0, 0)])
        assert len(delivered) == 1
