"""CRC-16 implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clint.crc import check, crc16, crc16_bitwise


class TestKnownVectors:
    def test_ccitt_check_string(self):
        # The classic CRC-16/CCITT-FALSE check value for "123456789".
        assert crc16(b"123456789") == 0x29B1

    def test_empty_input(self):
        assert crc16(b"") == 0xFFFF  # init value untouched

    def test_single_zero_byte(self):
        assert crc16(b"\x00") == crc16_bitwise(b"\x00")


class TestImplementationsAgree:
    @given(st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_table_matches_bitwise(self, data):
        assert crc16(data) == crc16_bitwise(data)


class TestErrorDetection:
    def test_check_accepts_valid(self):
        data = b"clint config"
        assert check(data, crc16(data))

    def test_check_rejects_wrong_crc(self):
        assert not check(b"clint config", 0x1234)

    @given(st.binary(min_size=1, max_size=32), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_single_bit_flips_always_detected(self, data, position):
        # CRC-16 detects all single-bit errors.
        bit = position % (len(data) * 8)
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        assert crc16(bytes(corrupted)) != crc16(data)

    def test_byte_swap_detected(self):
        assert crc16(b"ab") != crc16(b"ba")
