"""Stateful soak of the Clint network: invariants under arbitrary
interleavings of traffic, multicast requests, idle slots, and drains."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.clint.network import ClintNetwork
from repro.traffic.base import NO_ARRIVAL

N = 4


class ClintSoak(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.net = ClintNetwork(N, voq_capacity=16)
        self.slot = 0
        self.offered = 0

    def _step(self, arrivals=None):
        self.net.step(self.slot, bulk_arrivals=arrivals)
        self.slot += 1

    @rule(bits=st.integers(0, N**N - 1))
    def inject_bulk(self, bits):
        arrivals = np.full(N, NO_ARRIVAL, dtype=np.int64)
        for i in range(N):
            dst = (bits // (N**i)) % N
            if dst != i:  # arbitrary rule to vary the pattern
                arrivals[i] = dst
        accepted = 0
        for i in range(N):
            if arrivals[i] != NO_ARRIVAL:
                accepted += 1
        # Count drops out: enqueue happens inside step; track via stats.
        before_dropped = sum(h.bulk_dropped for h in self.net.hosts)
        self._step(arrivals)
        after_dropped = sum(h.bulk_dropped for h in self.net.hosts)
        self.offered += accepted - (after_dropped - before_dropped)

    @rule(src=st.integers(0, N - 1), t1=st.integers(0, N - 1), t2=st.integers(0, N - 1))
    def request_multicast(self, src, t1, t2):
        if t1 == t2:
            # A single-target "multicast" emits one copy and would not be
            # counted in multicast_deliveries; keep the fanout >= 2 so
            # the unicast-conservation invariant stays exact.
            t2 = (t1 + 1) % N
        self.net.hosts[src].request_multicast(sorted({t1, t2}), self.slot)
        self._step()

    @rule()
    def idle_slot(self):
        self._step()

    @rule()
    def drain(self):
        for _ in range(8):
            self._step()

    @invariant()
    def delivered_never_exceeds_sent(self):
        sent = sum(h.bulk_sent for h in self.net.hosts)
        assert self.net.stats.bulk_delivered <= sent

    @invariant()
    def acks_never_exceed_deliveries(self):
        assert self.net.stats.acks_delivered <= self.net.stats.bulk_delivered

    @invariant()
    def unicast_conservation_upper_bound(self):
        # Unicast deliveries can never exceed unicast offered load.
        unicast_delivered = (
            self.net.stats.bulk_delivered - self.net.stats.multicast_deliveries
        )
        assert unicast_delivered <= self.offered

    @invariant()
    def queues_within_capacity(self):
        for host in self.net.hosts:
            for queue in host.voqs:
                assert len(queue) <= host.voq_capacity


ClintSoakTest = ClintSoak.TestCase
ClintSoakTest.settings = settings(
    max_examples=15, stateful_step_count=15, deadline=None
)
