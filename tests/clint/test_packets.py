"""Clint packet formats: bit layout, CRC protection, roundtrips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clint.packets import (
    ConfigPacket,
    GrantPacket,
    MAX_NODES,
    TYPE_CFG,
    TYPE_GNT,
    mask_to_vector,
    vector_to_mask,
)


class TestVectorMasks:
    def test_roundtrip(self):
        bits = [True, False, True, False] + [False] * 12
        assert mask_to_vector(vector_to_mask(bits), 16) == bits

    def test_mask_bit_positions(self):
        assert vector_to_mask([True] + [False] * 15) == 1
        assert vector_to_mask([False, False, True]) == 4

    def test_too_long_vector_rejected(self):
        with pytest.raises(ValueError):
            vector_to_mask([False] * 17)


class TestConfigPacket:
    def test_wire_size_is_11_bytes(self):
        assert len(ConfigPacket(req=0).pack()) == 11

    def test_type_byte(self):
        assert ConfigPacket(req=0).pack()[0] == TYPE_CFG

    def test_roundtrip(self):
        packet = ConfigPacket(req=0xA5A5, pre=0x0010, ben=0xFFFE, qen=0x7FFF)
        assert ConfigPacket.unpack(packet.pack()) == packet

    def test_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            ConfigPacket(req=1 << 16)

    def test_corrupted_payload_rejected(self):
        raw = bytearray(ConfigPacket(req=0x1234).pack())
        raw[3] ^= 0x40
        with pytest.raises(ValueError, match="CRC"):
            ConfigPacket.unpack(bytes(raw))

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="11 bytes"):
            ConfigPacket.unpack(b"\x01\x02")

    def test_wrong_type_rejected(self):
        raw = bytearray(ConfigPacket(req=0).pack())
        raw[0] = 0x7F
        with pytest.raises(ValueError, match="not a config"):
            ConfigPacket.unpack(bytes(raw))

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, req, pre):
        packet = ConfigPacket(req=req, pre=pre)
        assert ConfigPacket.unpack(packet.pack()) == packet


class TestGrantPacket:
    def test_wire_size_is_5_bytes(self):
        assert len(GrantPacket(node_id=0).pack()) == 5

    def test_type_byte(self):
        assert GrantPacket(node_id=3).pack()[0] == TYPE_GNT

    def test_roundtrip_all_flags(self):
        packet = GrantPacket(
            node_id=15, gnt=9, gnt_val=True, link_err=True, crc_err=True
        )
        assert GrantPacket.unpack(packet.pack()) == packet

    def test_node_id_range_enforced(self):
        with pytest.raises(ValueError):
            GrantPacket(node_id=MAX_NODES)

    def test_gnt_range_enforced(self):
        with pytest.raises(ValueError):
            GrantPacket(node_id=0, gnt=16)

    def test_nibble_packing(self):
        raw = GrantPacket(node_id=0xA, gnt=0x5).pack()
        assert raw[1] == 0xA5

    def test_corruption_detected(self):
        raw = bytearray(GrantPacket(node_id=2, gnt=7, gnt_val=True).pack())
        raw[2] ^= 0x04  # flip gntVal
        with pytest.raises(ValueError, match="CRC"):
            GrantPacket.unpack(bytes(raw))

    @given(
        st.integers(0, 15),
        st.integers(0, 15),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, node_id, gnt, val, link, crc_err):
        packet = GrantPacket(node_id, gnt, val, link, crc_err)
        assert GrantPacket.unpack(packet.pack()) == packet
