"""docs/API.md must reference only symbols that import from repro.

Thin pytest wrapper around ``tools/check_docs_consistency.py`` (CI also
runs the script directly) so doc drift fails the tier-1 suite.
"""

import importlib.util
from pathlib import Path

TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_docs_consistency.py"


def load_tool():
    spec = importlib.util.spec_from_file_location("check_docs_consistency", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_api_md_symbol_imports():
    tool = load_tool()
    failures = []
    checked = 0
    for section_module, symbol, line_number in tool.iter_referenced_symbols(
        tool.API_MD.read_text()
    ):
        checked += 1
        if not tool.resolves(section_module, symbol):
            failures.append(f"API.md:{line_number}: {symbol} (section {section_module})")
    assert checked > 50, "symbol extraction regressed — too few symbols found"
    assert not failures, "unresolvable API.md references:\n" + "\n".join(failures)


def test_checker_catches_bogus_symbol():
    tool = load_tool()
    assert not tool.resolves("repro.sim", "DefinitelyNotARealSymbol")
    assert tool.resolves("repro.sim", "run_simulation")
    assert tool.resolves("repro.sim", "repro.sim.fifo_switch.FIFOSwitch")
