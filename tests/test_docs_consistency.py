"""docs/API.md must reference only symbols that import from repro,
and every relative link in README.md / docs/*.md must resolve.

Thin pytest wrapper around ``tools/check_docs_consistency.py`` (CI also
runs the script directly) so doc drift fails the tier-1 suite.
"""

import importlib.util
from pathlib import Path

TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_docs_consistency.py"


def load_tool():
    spec = importlib.util.spec_from_file_location("check_docs_consistency", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_api_md_symbol_imports():
    tool = load_tool()
    failures = []
    checked = 0
    for section_module, symbol, line_number in tool.iter_referenced_symbols(
        tool.API_MD.read_text()
    ):
        checked += 1
        if not tool.resolves(section_module, symbol):
            failures.append(f"API.md:{line_number}: {symbol} (section {section_module})")
    assert checked > 50, "symbol extraction regressed — too few symbols found"
    assert not failures, "unresolvable API.md references:\n" + "\n".join(failures)


def test_checker_catches_bogus_symbol():
    tool = load_tool()
    assert not tool.resolves("repro.sim", "DefinitelyNotARealSymbol")
    assert tool.resolves("repro.sim", "run_simulation")
    assert tool.resolves("repro.sim", "repro.sim.fifo_switch.FIFOSwitch")


def test_every_relative_link_resolves():
    tool = load_tool()
    failures = []
    links = 0
    for document in tool.linked_documents():
        links += sum(1 for _ in tool.iter_links(document.read_text()))
        failures += tool.check_links(document)
    assert links > 10, "link extraction regressed — too few links found"
    assert not failures, "dead docs links:\n" + "\n".join(failures)


def test_index_reaches_every_docs_file():
    """docs/INDEX.md must link every Markdown guide in docs/."""
    tool = load_tool()
    index = tool.REPO_ROOT / "docs" / "INDEX.md"
    linked = {
        (index.parent / target.partition("#")[0]).resolve()
        for target, _ in tool.iter_links(index.read_text())
        if not tool.EXTERNAL.match(target) and target.partition("#")[0]
    }
    for guide in (tool.REPO_ROOT / "docs").glob("*.md"):
        if guide.name == "INDEX.md":
            continue
        assert guide.resolve() in linked, f"docs/INDEX.md does not link {guide.name}"


def test_heading_anchors_follow_github_slug_rules(tmp_path):
    tool = load_tool()
    anchors = tool.heading_anchors(
        "# Hello World\n## n > 64 (wide)\n## `code` span\n## Dup\n## Dup\n"
    )
    assert anchors == {"hello-world", "n--64-wide", "code-span", "dup", "dup-1"}


def test_link_checker_flags_dead_links_and_anchors(tmp_path):
    tool = load_tool()
    target = tmp_path / "target.md"
    target.write_text("# Real Heading\n")
    source = tmp_path / "source.md"
    source.write_text(
        "[ok](target.md)\n"
        "[ok-anchor](target.md#real-heading)\n"
        "[dead](missing.md)\n"
        "[dead-anchor](target.md#not-there)\n"
        "[external](https://example.com/missing.md)\n"
        "```\n[in a code fence](also-missing.md)\n```\n"
    )
    failures = tool.check_links(source)
    assert len(failures) == 2
    assert "dead link `missing.md`" in failures[0]
    assert "dead anchor" in failures[1]
