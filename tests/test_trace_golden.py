"""The reference trace must match the golden file byte for byte.

Thin pytest wrapper around ``tools/check_trace_diff.py`` (CI also runs
the script directly) so any behavioural drift in the simulator,
scheduler, or trace schema fails the tier-1 suite. After an intentional
change, re-golden with ``python tools/check_trace_diff.py --update``.
"""

import importlib.util
from pathlib import Path

TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_trace_diff.py"


def load_tool():
    spec = importlib.util.spec_from_file_location("check_trace_diff", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_reference_trace_matches_golden():
    tool = load_tool()
    assert tool.GOLDEN.exists(), "golden trace missing — run the tool with --update"
    problems = tool.diff_traces(tool.GOLDEN.read_text(), tool.generate_trace())
    assert not problems, "\n".join(problems)


def test_golden_trace_is_schema_valid():
    """The pinned golden file itself passes the event schema."""
    import json

    from repro.obs.events import validate_event

    tool = load_tool()
    events = [
        json.loads(line)
        for line in tool.GOLDEN.read_text().splitlines()
        if line.strip()
    ]
    assert len(events) > 100
    for event in events:
        assert validate_event(event) == [], event
