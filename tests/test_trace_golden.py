"""Every reference trace must match its golden file byte for byte.

Thin pytest wrapper around ``tools/check_trace_diff.py`` (CI also runs
the script directly) so any behavioural drift in the simulator, a
scheduler, the adaptive fault-reaction loop, or the trace schema fails
the tier-1 suite. After an intentional change, re-golden with
``python tools/check_trace_diff.py --update``.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_trace_diff.py"


def load_tool():
    spec = importlib.util.spec_from_file_location("check_trace_diff", TOOL)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves annotations through sys.modules[__module__],
    # so the module must be registered before exec.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


TOOL_MODULE = load_tool()
GOLDEN_NAMES = tuple(run.name for run in TOOL_MODULE.GOLDENS)


def golden(name):
    return next(run for run in TOOL_MODULE.GOLDENS if run.name == name)


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_reference_trace_matches_golden(name):
    run = golden(name)
    assert run.path.exists(), (
        f"golden '{name}' missing — run the tool with --update"
    )
    problems = TOOL_MODULE.diff_traces(
        run.path.read_text(), TOOL_MODULE.generate_trace(run)
    )
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_golden_trace_is_schema_valid(name):
    """The pinned golden files themselves pass the event schema."""
    from repro.obs.events import validate_event

    events = [
        json.loads(line)
        for line in golden(name).path.read_text().splitlines()
        if line.strip()
    ]
    assert len(events) > 100
    for event in events:
        assert validate_event(event) == [], event


def test_adaptive_golden_pins_the_reaction_loop():
    """The adaptive golden actually exercises suspect/probe/readmit."""
    kinds = {
        json.loads(line)["type"]
        for line in golden("adaptive").path.read_text().splitlines()
        if line.strip()
    }
    assert {"suspect", "probe", "readmit"} <= kinds


def test_legacy_single_golden_entry_points_still_work():
    """Back-compat: GOLDEN / generate_trace() name the reference run."""
    assert TOOL_MODULE.GOLDEN == golden("reference").path
    fresh = TOOL_MODULE.generate_trace()
    assert TOOL_MODULE.diff_traces(golden("reference").path.read_text(), fresh) == []
