"""Crossbar integration: masking, fault/recovery events, metrics."""

import numpy as np
import pytest

from repro.baselines.registry import make_scheduler
from repro.faults import FaultInjector, FaultPlan, LinkOutage, PortDownInterval
from repro.obs.events import validate_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.crossbar import InputQueuedSwitch
from repro.sim.simulator import run_simulation
from repro.traffic.base import NO_ARRIVAL
from repro.traffic.bernoulli import BernoulliUniform
from repro.types import NO_GRANT


def _config(**kw):
    defaults = dict(n_ports=4, warmup_slots=0, measure_slots=100, seed=3)
    defaults.update(kw)
    return SimConfig(**defaults)


def _switch(plan, scheduler="lcf_central_rr", config=None, **kw):
    config = config or _config()
    injector = FaultInjector(plan, config.n_ports, seed=config.seed)
    return InputQueuedSwitch(
        config, make_scheduler(scheduler, config.n_ports), injector=injector, **kw
    )


class TestMasking:
    def test_no_grants_cross_down_port(self):
        plan = FaultPlan(port_down=(PortDownInterval(1, 0, 50),))
        switch = _switch(plan)
        traffic = BernoulliUniform(4, 0.9, seed=2)
        for slot in range(50):
            schedule = switch.step(slot, traffic.arrivals())
            assert schedule[1] == NO_GRANT
            assert 1 not in schedule[schedule != NO_GRANT]

    def test_schedule_valid_on_surviving_ports(self):
        plan = FaultPlan(
            port_down=(PortDownInterval(0, 10, 40, "input"),),
            link_down=(LinkOutage(2, 3, 0, 60),),
        )
        config = _config()
        injector = FaultInjector(plan, 4, seed=config.seed)
        switch = InputQueuedSwitch(
            config, make_scheduler("islip", 4), injector=injector
        )
        traffic = BernoulliUniform(4, 0.95, seed=5)
        for slot in range(60):
            mask = injector.request_mask(slot)
            schedule = switch.step(slot, traffic.arrivals())
            # The injection stage runs inside step(), so validate the
            # grants against the fault mask: conflict-free and never
            # across a masked crosspoint. (A grant's VOQ was provably
            # non-empty — forwarding popped it without error.)
            granted = [(i, j) for i, j in enumerate(schedule) if j != NO_GRANT]
            assert len({j for _, j in granted}) == len(granted)
            assert all(mask[i, j] for i, j in granted)

    def test_down_input_still_buffers_arrivals(self):
        plan = FaultPlan(port_down=(PortDownInterval(0, 0, 30, "input"),))
        switch = _switch(plan)
        arrivals = np.full(4, NO_ARRIVAL, dtype=np.int64)
        arrivals[0] = 2
        for slot in range(10):
            switch.step(slot, arrivals.copy())
        # Arrivals kept flowing into the PQ while the ingress was dead.
        assert len(switch.pqs[0]) == 10


class TestEventsAndMetrics:
    def _run_with_outage(self, start=20, end=50, side="both"):
        config = _config(measure_slots=150)
        tracer = RingTracer(1 << 16)
        metrics = MetricsRegistry()
        result = run_simulation(
            config,
            "lcf_central_rr",
            0.6,
            tracer=tracer,
            metrics=metrics,
            faults=FaultPlan(port_down=(PortDownInterval(1, start, end, side),)),
        )
        return result, tracer, metrics

    def test_fault_and_recovery_events_emitted(self):
        _, tracer, metrics = self._run_with_outage()
        faults = tracer.of_type("fault")
        recoveries = tracer.of_type("recovery")
        assert {(e["port"], e["side"]) for e in faults} == {
            (1, "input"),
            (1, "output"),
        }
        assert all(e["slot"] == 20 for e in faults)
        for event in faults + recoveries:
            assert validate_event(event) == [], event
        # Output side recovers the moment the port comes back up ...
        output_rec = [e for e in recoveries if e["side"] == "output"]
        assert output_rec and output_rec[0]["slot"] == 50
        assert output_rec[0]["backlog_slots"] == 0
        # ... the input side once its backlog has drained to the
        # at-fault level, which takes time at load 0.6.
        input_rec = [e for e in recoveries if e["side"] == "input"]
        assert input_rec and input_rec[0]["slot"] > 50
        assert input_rec[0]["backlog_slots"] == input_rec[0]["slot"] - 50

    def test_metrics_counters(self):
        _, _, metrics = self._run_with_outage()
        assert metrics.counter("fault_events").value == 2
        assert metrics.counter("recovery_events").value == 2
        assert metrics.counter("degraded_slots").value == 30
        assert "recovery_time" in metrics

    def test_output_only_outage_single_side(self):
        _, tracer, metrics = self._run_with_outage(side="output")
        assert {e["side"] for e in tracer.of_type("fault")} == {"output"}
        assert metrics.counter("fault_events").value == 1

    def test_refault_during_drain_cancels_recovery(self):
        config = _config(measure_slots=120)
        tracer = RingTracer(1 << 16)
        plan = FaultPlan(
            port_down=(
                PortDownInterval(0, 10, 30, "input"),
                PortDownInterval(0, 32, 60, "input"),
            )
        )
        run_simulation(config, "lcf_central_rr", 0.9, tracer=tracer, faults=plan)
        faults = tracer.of_type("fault")
        recoveries = tracer.of_type("recovery")
        assert len(faults) == 2
        # Any recovery must come after the second outage ended.
        assert all(e["slot"] >= 60 for e in recoveries)


class TestNeutrality:
    def test_message_only_plan_drops_switch_injector(self):
        plan = FaultPlan.message_loss(0.2)
        switch = _switch(plan)
        assert switch.injector is None

    def test_topology_plan_keeps_injector(self):
        plan = FaultPlan(port_down=(PortDownInterval(0, 0, 1),))
        assert _switch(plan).injector is not None

    def test_simulator_rejects_special_switches_with_faults(self):
        with pytest.raises(ValueError):
            run_simulation(
                _config(), "fifo", 0.5, faults=FaultPlan.message_loss(0.1)
            )
