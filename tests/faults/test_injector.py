"""FaultInjector: purity, determinism, and index validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ACCEPT,
    GRANT,
    REQUEST,
    FaultInjector,
    FaultPlan,
    LinkOutage,
    PortDownInterval,
    PortDutyCycle,
)


class TestValidation:
    def test_port_down_out_of_range(self):
        plan = FaultPlan(port_down=(PortDownInterval(4, 0, 1),))
        with pytest.raises(ValueError, match="port_down"):
            FaultInjector(plan, n=4)

    def test_duty_out_of_range(self):
        plan = FaultPlan(port_duty=(PortDutyCycle(7, 10, 1),))
        with pytest.raises(ValueError, match="port_duty"):
            FaultInjector(plan, n=4)

    def test_link_out_of_range(self):
        plan = FaultPlan(link_down=(LinkOutage(0, 9, 0, 1),))
        with pytest.raises(ValueError, match="link_down"):
            FaultInjector(plan, n=4)


class TestTopologyMasks:
    def test_healthy_slot_full_mask(self):
        injector = FaultInjector(FaultPlan(), n=4)
        assert injector.request_mask(0).all()
        assert not injector.degraded(0)
        assert not injector.down_inputs(0).any()
        assert not injector.down_outputs(0).any()

    def test_port_down_masks_row_and_column(self):
        plan = FaultPlan(port_down=(PortDownInterval(1, 10, 20),))
        injector = FaultInjector(plan, n=4)
        mask = injector.request_mask(15)
        assert not mask[1, :].any()
        assert not mask[:, 1].any()
        assert mask[0, 0] and mask[2, 3]
        assert injector.degraded(15)
        assert injector.request_mask(25).all()

    def test_input_side_masks_only_row(self):
        plan = FaultPlan(port_down=(PortDownInterval(2, 0, 5, "input"),))
        injector = FaultInjector(plan, n=4)
        mask = injector.request_mask(0)
        assert not mask[2, :].any()
        assert mask[:, 2].sum() == 3  # only row 2's entry is gone
        assert injector.down_inputs(0)[2]
        assert not injector.down_outputs(0)[2]

    def test_link_outage_masks_single_crosspoint(self):
        plan = FaultPlan(link_down=(LinkOutage(0, 3, 0, 10),))
        injector = FaultInjector(plan, n=4)
        mask = injector.request_mask(5)
        assert not mask[0, 3]
        assert mask.sum() == 15
        assert injector.degraded(5)
        assert not injector.down_inputs(5).any()

    def test_memo_does_not_leak_between_slots(self):
        plan = FaultPlan(port_down=(PortDownInterval(0, 2, 3),))
        injector = FaultInjector(plan, n=2)
        assert injector.request_mask(1).all()
        assert not injector.request_mask(2)[0].any()
        assert injector.request_mask(3).all()


class TestMessageFates:
    def test_zero_rate_always_survives(self):
        injector = FaultInjector(FaultPlan(), n=4)
        assert all(
            injector.message_survives(slot, 0, REQUEST, 0, 1) for slot in range(100)
        )

    def test_total_loss_never_survives(self):
        injector = FaultInjector(FaultPlan.message_loss(1.0), n=4)
        assert not any(
            injector.message_survives(slot, it, kind, 0, 1)
            for slot in range(20)
            for it in range(4)
            for kind in (REQUEST, GRANT, ACCEPT)
        )

    def test_purity_call_order_independent(self):
        plan = FaultPlan.message_loss(0.5, delay=0.3)
        a = FaultInjector(plan, n=8, seed=42)
        b = FaultInjector(plan, n=8, seed=42)
        queries = [
            (slot, it, kind, src, dst)
            for slot in range(5)
            for it in range(3)
            for kind in (REQUEST, GRANT, ACCEPT)
            for src in range(4)
            for dst in range(4)
        ]
        forward = [a.message_survives(*q) for q in queries]
        backward = [b.message_survives(*q) for q in reversed(queries)]
        assert forward == list(reversed(backward))

    def test_seed_changes_fates(self):
        plan = FaultPlan.message_loss(0.5)
        fates = {
            seed: tuple(
                FaultInjector(plan, n=4, seed=seed).message_survives(
                    slot, 0, REQUEST, 0, 1
                )
                for slot in range(64)
            )
            for seed in (0, 1)
        }
        assert fates[0] != fates[1]

    def test_accepts_never_delayed(self):
        injector = FaultInjector(FaultPlan(delay=1.0), n=4)
        assert not any(
            injector.message_delayed(slot, 0, ACCEPT, 0, 1) for slot in range(50)
        )
        assert all(
            injector.message_delayed(slot, 0, REQUEST, 0, 1) for slot in range(50)
        )

    @given(rate=st.floats(0.05, 0.95), seed=st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_empirical_loss_rate_tracks_probability(self, rate, seed):
        injector = FaultInjector(FaultPlan.message_loss(rate), n=4, seed=seed)
        drops = sum(
            not injector.message_survives(slot, it, REQUEST, src, dst)
            for slot in range(50)
            for it in range(2)
            for src in range(4)
            for dst in range(4)
        )
        assert abs(drops / 1600 - rate) < 0.08


class TestCorruption:
    def test_burst_targets_host_channel_window(self):
        from repro.faults import CrcBurst

        plan = FaultPlan(crc_bursts=(CrcBurst(2, 10, 20, "cfg"),))
        injector = FaultInjector(plan, n=4)
        assert injector.corrupts(10, 2, "cfg")
        assert not injector.corrupts(10, 2, "gnt")
        assert not injector.corrupts(10, 1, "cfg")
        assert not injector.corrupts(20, 2, "cfg")

    def test_corruption_bit_in_range_and_deterministic(self):
        injector = FaultInjector(FaultPlan(), n=4, seed=9)
        bits = [injector.corruption_bit(slot, 1, 12) for slot in range(200)]
        assert all(0 <= bit < 96 for bit in bits)
        assert bits == [injector.corruption_bit(slot, 1, 12) for slot in range(200)]
        assert len(set(bits)) > 10
