"""The zero-fault property: an empty FaultPlan is *absent*, not inert.

For every registry scheduler, ``run_simulation(..., faults=FaultPlan())``
must be bit-identical — statistics AND event traces — to running with no
``faults`` argument at all. This is what keeps resilience-sweep baselines
cache-compatible with plain Figure 12 sweeps.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import SPECIAL_SWITCH_NAMES, available_schedulers
from repro.faults import FaultPlan, PortDutyCycle
from repro.obs.tracer import RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation

CROSSBAR_SCHEDULERS = tuple(
    name for name in available_schedulers() if name not in SPECIAL_SWITCH_NAMES
)

CONFIG = SimConfig(n_ports=4, warmup_slots=10, measure_slots=80, seed=6)


def _traced_run(faults):
    tracer = RingTracer(1 << 16)
    result = run_simulation(CONFIG, "lcf_dist_rr", 0.7, tracer=tracer, faults=faults)
    return result, tracer.events


@pytest.mark.parametrize("scheduler", CROSSBAR_SCHEDULERS)
def test_empty_plan_bit_identical_for_every_scheduler(scheduler):
    plain = run_simulation(CONFIG, scheduler, 0.7)
    faulted = run_simulation(CONFIG, scheduler, 0.7, faults=FaultPlan())
    assert plain.row() == faulted.row()


def test_empty_plan_produces_identical_traces():
    plain_result, plain_events = _traced_run(None)
    null_result, null_events = _traced_run(FaultPlan())
    assert plain_result.row() == null_result.row()
    assert plain_events == null_events


def test_zero_down_duty_cycle_is_also_null():
    plan = FaultPlan(port_duty=tuple(PortDutyCycle(p, 100, 0) for p in range(4)))
    plain = run_simulation(CONFIG, "islip", 0.7)
    faulted = run_simulation(CONFIG, "islip", 0.7, faults=plan)
    assert plain.row() == faulted.row()


@given(
    scheduler=st.sampled_from(CROSSBAR_SCHEDULERS),
    load=st.floats(0.1, 1.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_empty_plan_property(scheduler, load, seed):
    config = SimConfig(n_ports=4, warmup_slots=5, measure_slots=40, seed=seed)
    plain = run_simulation(config, scheduler, load)
    for faults in (FaultPlan(), {}, ()):
        assert run_simulation(config, scheduler, load, faults=faults).row() == plain.row()
