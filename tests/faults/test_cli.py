"""``lcf-faults`` CLI end-to-end."""

import json
import sys
from pathlib import Path

from repro.faults import cli

TOOLS = Path(__file__).resolve().parents[2] / "tools"
sys.path.insert(0, str(TOOLS))

from check_trace_schema import check_trace  # noqa: E402

FAST = ("--ports", "4", "--slots", "120", "--warmup", "20", "--seed", "3")


def run_cli(capsys, *argv):
    code = cli.main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_single_run_with_outage_reports_faults(tmp_path, capsys):
    trace = tmp_path / "faults.jsonl"
    report = tmp_path / "report.json"
    code, stdout, _ = run_cli(
        capsys,
        *FAST,
        "--scheduler", "lcf_dist_rr", "--loss", "0.1",
        "--port-down", "1:30:60",
        "--trace-out", str(trace), "--json", str(report),
    )
    assert code == 0
    assert "port outage" in stdout
    assert "degraded slot" in stdout
    checked, errors = check_trace(trace)
    assert errors == []
    assert checked > 120
    payload = json.loads(report.read_text())
    assert payload["mode"] == "single"
    assert payload["row"]["scheduler"] == "lcf_dist_rr"


def test_single_run_lists_fault_events_without_trace_out(capsys):
    code, stdout, _ = run_cli(
        capsys, *FAST, "--scheduler", "lcf_central_rr", "--port-down", "2:10:40"
    )
    assert code == 0
    assert "'type': 'fault'" in stdout
    assert "'type': 'recovery'" in stdout


def test_loss_grid_sweep_writes_artifacts(tmp_path, capsys):
    csv = tmp_path / "loss.csv"
    report = tmp_path / "loss.json"
    code, stdout, _ = run_cli(
        capsys,
        *FAST,
        "--schedulers", "lcf_dist_rr,islip",
        "--loss-grid", "0,0.3",
        "--cache-dir", str(tmp_path / "cache"),
        "--csv", str(csv), "--json", str(report),
    )
    assert code == 0
    assert "resilience (message_loss" in stdout
    assert csv.read_text().count("\n") >= 4
    payload = json.loads(report.read_text())
    assert payload["mode"] == "message_loss"
    assert len(payload["rows"]) == 4


def test_availability_grid_sweep(capsys):
    code, stdout, _ = run_cli(
        capsys,
        *FAST,
        "--schedulers", "lcf_central_rr",
        "--availability-grid", "1.0,0.9",
    )
    assert code == 0
    assert "resilience (availability" in stdout


def test_bad_port_down_spec_exits_nonzero(capsys):
    try:
        cli.main(["--port-down", "nonsense"])
    except SystemExit as exc:
        assert exc.code == 2
    else:  # pragma: no cover
        raise AssertionError("argparse should reject the spec")
    capsys.readouterr()


def test_both_grids_rejected(capsys):
    code, _, stderr = run_cli(
        capsys, "--loss-grid", "0,0.1", "--availability-grid", "1.0"
    )
    assert code == 2
    assert "choose one" in stderr


def test_special_switch_rejected(capsys):
    code, _, stderr = run_cli(capsys, "--scheduler", "fifo", "--loss", "0.1")
    assert code == 2
    assert "fifo" in stderr


def test_negative_seed_rejected_before_running(capsys):
    code, _, stderr = run_cli(capsys, "--seed", "-1")
    assert code == 2
    assert "--seed" in stderr


def test_zero_ports_rejected(capsys):
    code, _, stderr = run_cli(capsys, "--ports", "0", "--loss", "0.1")
    assert code == 2
    assert "--ports" in stderr


def test_empty_grids_rejected(capsys):
    for flag in ("--loss-grid", "--availability-grid"):
        code, _, stderr = run_cli(capsys, flag, ",")
        assert code == 2
        assert "no values" in stderr


def test_invalid_loss_probability_rejected(capsys):
    code, _, stderr = run_cli(capsys, *FAST, "--loss", "1.5")
    assert code == 2
    assert "invalid fault plan" in stderr


def test_failed_run_leaves_no_artifacts(tmp_path, capsys):
    report = tmp_path / "never.json"
    csv = tmp_path / "never.csv"
    code, _, _ = run_cli(
        capsys, *FAST, "--loss", "1.5",
        "--json", str(report), "--csv", str(csv),
    )
    assert code == 2
    assert list(tmp_path.iterdir()) == []
