"""Lossy control channel: the protocol survives any loss rate.

The key acceptance properties of the fault subsystem:

* every schedule produced under *any* loss/delay combination is a valid
  conflict-free matching over the offered requests (property-tested at
  0-100% loss);
* the protocol never raises, even at total loss;
* at ``delay=0`` the matrix implementation and the message-passing
  agent implementation make bit-identical decisions — the injector
  hands both the same per-message fates;
* with a zero-rate plan both lossy implementations reproduce their
  perfect-channel counterparts exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lcf_dist import LCFDistributed, LCFDistributedRR
from repro.core.lcf_dist_agents import LCFDistributedAgents
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LossyLCFDistributed,
    LossyLCFDistributedAgents,
    LossyLCFDistributedRR,
    RequestLossFilter,
    make_lossy_scheduler,
)
from repro.matching.verify import is_valid_schedule
from repro.baselines.registry import make_scheduler

from tests.conftest import request_matrices_of


def _injector(rate, delay=0.0, n=8, seed=0):
    return FaultInjector(FaultPlan.message_loss(rate, delay=delay), n=n, seed=seed)


LOSSY_CLASSES = [LossyLCFDistributed, LossyLCFDistributedRR, LossyLCFDistributedAgents]


class TestValidityUnderLoss:
    @pytest.mark.parametrize("cls", LOSSY_CLASSES)
    @given(
        rate=st.floats(0.0, 1.0),
        delay=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**16),
        requests=request_matrices_of(6),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_schedule_valid(self, cls, rate, delay, seed, requests):
        scheduler = cls(6, _injector(rate, delay, n=6, seed=seed))
        for _ in range(4):
            schedule = scheduler.schedule(requests)
            assert is_valid_schedule(requests, schedule)

    @pytest.mark.parametrize("cls", LOSSY_CLASSES)
    def test_total_loss_yields_empty_schedule_without_raising(self, cls):
        scheduler = cls(4, _injector(1.0, n=4))
        requests = np.ones((4, 4), dtype=bool)
        for _ in range(5):
            schedule = scheduler.schedule(requests)
            assert (schedule == -1).all() or is_valid_schedule(requests, schedule)

    def test_request_loss_filter_valid_under_loss(self):
        for name in ("pim", "islip", "lcf_central", "wfront"):
            scheduler = RequestLossFilter(
                make_scheduler(name, 6, seed=3), _injector(0.4, n=6, seed=5)
            )
            rng = np.random.default_rng(11)
            for _ in range(10):
                requests = rng.random((6, 6)) < 0.5
                schedule = scheduler.schedule(requests)
                assert is_valid_schedule(requests, schedule)


class TestZeroRateEquivalence:
    @pytest.mark.parametrize(
        "lossy_cls, plain_cls",
        [
            (LossyLCFDistributed, LCFDistributed),
            (LossyLCFDistributedRR, LCFDistributedRR),
            (LossyLCFDistributedAgents, LCFDistributedAgents),
        ],
    )
    def test_zero_rate_matches_perfect_channel(self, lossy_cls, plain_cls):
        lossy = lossy_cls(8, _injector(0.0))
        plain = plain_cls(8)
        rng = np.random.default_rng(7)
        for _ in range(30):
            requests = rng.random((8, 8)) < 0.4
            np.testing.assert_array_equal(
                lossy.schedule(requests), plain.schedule(requests)
            )


class TestMatrixAgentEquivalence:
    @given(
        rate=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_pure_drops_bit_identical(self, rate, seed):
        """At delay=0 the matrix and agent protocols draw identical
        per-message fates from the injector and so agree exactly."""
        matrix = LossyLCFDistributed(6, _injector(rate, n=6, seed=seed))
        agents = LossyLCFDistributedAgents(6, _injector(rate, n=6, seed=seed))
        rng = np.random.default_rng(seed)
        for _ in range(10):
            requests = rng.random((6, 6)) < 0.5
            np.testing.assert_array_equal(
                matrix.schedule(requests), agents.schedule(requests)
            )

    @given(
        rate=st.floats(0.0, 0.6),
        delay=st.floats(0.0, 0.6),
        seed=st.integers(0, 2**12),
    )
    @settings(max_examples=25, deadline=None)
    def test_delay_path_never_raises_and_counts_messages(self, rate, delay, seed):
        agents = LossyLCFDistributedAgents(6, _injector(rate, delay, n=6, seed=seed))
        rng = np.random.default_rng(seed + 1)
        for _ in range(10):
            requests = rng.random((6, 6)) < 0.5
            schedule = agents.schedule(requests)
            assert is_valid_schedule(requests, schedule)
        if rate > 0.2:
            assert agents.dropped_messages > 0
        if delay > 0.2:
            assert agents.delayed_messages > 0


class TestFactory:
    def test_protocol_names_get_faithful_implementation(self):
        injector = _injector(0.1, n=4)
        assert isinstance(
            make_lossy_scheduler("lcf_dist", 4, injector), LossyLCFDistributed
        )
        assert isinstance(
            make_lossy_scheduler("lcf_dist_rr", 4, injector), LossyLCFDistributedRR
        )

    def test_other_names_get_request_filter(self):
        injector = _injector(0.1, n=4)
        for name in ("pim", "islip", "lcf_central", "lqf"):
            scheduler = make_lossy_scheduler(name, 4, injector, seed=2)
            assert isinstance(scheduler, RequestLossFilter)
            assert scheduler.n == 4

    def test_filter_passes_weighted_scheduling_through(self):
        injector = _injector(0.0, n=4)
        filtered = make_lossy_scheduler("lqf", 4, injector)
        plain = make_scheduler("lqf", 4)
        weights = np.arange(16, dtype=np.int64).reshape(4, 4)
        np.testing.assert_array_equal(
            filtered.schedule_weighted(weights.copy()),
            plain.schedule_weighted(weights.copy()),
        )
