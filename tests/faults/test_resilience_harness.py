"""Resilience harness: sweeps, caching, and baseline reproduction."""

import math

from repro.faults.harness import run_availability_sweep, run_loss_sweep
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation
from repro.sweep.runner import ParallelRunner
from repro.sweep.spec import SweepSpec

CONFIG = SimConfig(n_ports=4, warmup_slots=10, measure_slots=80, seed=2)
SCHEDULERS = ("lcf_dist_rr", "islip")


def test_loss_sweep_covers_grid_and_degrades():
    report = run_loss_sweep(SCHEDULERS, rates=(0.0, 0.5), load=0.7, config=CONFIG)
    assert report.axis == "message_loss"
    assert set(report.results) == {
        (name, rate) for name in SCHEDULERS for rate in (0.0, 0.5)
    }
    for name in SCHEDULERS:
        assert report.degradation(name, 0.0) == 1.0
        assert 0.0 < report.degradation(name, 0.5) <= 1.001


def test_zero_loss_point_reproduces_plain_run():
    report = run_loss_sweep(SCHEDULERS, rates=(0.0, 0.3), load=0.7, config=CONFIG)
    for name in SCHEDULERS:
        plain = run_simulation(CONFIG, name, 0.7)
        assert report.get(name, 0.0).row() == plain.row()


def test_zero_fault_point_shares_cache_with_plain_sweep(tmp_path):
    """The cache-key property: a zero-loss resilience point hashes to
    the same key as a plain sweep point, so the baseline is served from
    a Figure 12 sweep's cache without recomputation."""
    cache = tmp_path / "cache"
    plain_spec = SweepSpec(schedulers=SCHEDULERS, loads=(0.7,), config=CONFIG)
    ParallelRunner(cache=cache).run(plain_spec)

    report = run_loss_sweep(
        SCHEDULERS, rates=(0.0,), load=0.7, config=CONFIG, cache=cache
    )
    assert report.sweep_reports[0].cache_hits == len(SCHEDULERS)
    assert report.sweep_reports[0].computed == 0


def test_faulted_points_cache_and_resume(tmp_path):
    cache = tmp_path / "cache"
    kwargs = dict(rates=(0.0, 0.4), load=0.7, config=CONFIG, cache=cache)
    first = run_loss_sweep(SCHEDULERS, **kwargs)
    assert sum(r.computed for r in first.sweep_reports) == 4
    second = run_loss_sweep(SCHEDULERS, **kwargs)
    assert sum(r.cache_hits for r in second.sweep_reports) == 4
    assert sum(r.computed for r in second.sweep_reports) == 0
    for key, result in first.results.items():
        assert second.results[key].row() == result.row()


def test_availability_sweep():
    report = run_availability_sweep(
        ("lcf_central_rr",), availabilities=(1.0, 0.8), load=0.5,
        config=CONFIG, period=40,
    )
    assert report.axis == "availability"
    assert report.baseline_value == 1.0
    plain = run_simulation(CONFIG, "lcf_central_rr", 0.5)
    assert report.get("lcf_central_rr", 1.0).row() == plain.row()
    degraded = report.get("lcf_central_rr", 0.8)
    assert degraded.throughput <= plain.throughput + 0.02


def test_report_rendering():
    report = run_loss_sweep(SCHEDULERS, rates=(0.0, 0.5), load=0.7, config=CONFIG)
    assert "resilience" in report.summary()
    assert "message loss" in report.plot()
    rows = report.rows()
    assert len(rows) == 4
    assert all(math.isfinite(row["delivery"]) for row in rows)
    assert report.to_csv().count("\n") >= 4
    xs, ys = report.series("islip", "mean_latency")
    assert xs == [0.0, 0.5] and len(ys) == 2
