"""FaultPlan construction, classification, and spec round-trips."""

import pytest

from repro.faults import (
    CrcBurst,
    FaultPlan,
    LinkOutage,
    PortDownInterval,
    PortDutyCycle,
)


class TestPrimitives:
    def test_port_down_interval_half_open(self):
        interval = PortDownInterval(2, 10, 20)
        assert not interval.active(9)
        assert interval.active(10)
        assert interval.active(19)
        assert not interval.active(20)

    def test_side_selects_halves(self):
        assert PortDownInterval(0, 0, 1, "input").hits_input
        assert not PortDownInterval(0, 0, 1, "input").hits_output
        assert not PortDownInterval(0, 0, 1, "output").hits_input
        both = PortDownInterval(0, 0, 1)
        assert both.hits_input and both.hits_output

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: PortDownInterval(-1, 0, 1),
            lambda: PortDownInterval(0, 5, 2),
            lambda: PortDownInterval(0, -1, 2),
            lambda: PortDownInterval(0, 0, 1, "sideways"),
            lambda: PortDutyCycle(0, 0, 0),
            lambda: PortDutyCycle(0, 10, 11),
            lambda: LinkOutage(-1, 0, 0, 1),
            lambda: LinkOutage(0, 0, 3, 1),
            lambda: CrcBurst(0, 0, 1, "bulk"),
            lambda: CrcBurst(-1, 0, 1),
        ],
    )
    def test_invalid_primitives_raise(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_duty_cycle_periodicity(self):
        duty = PortDutyCycle(1, period=10, down=3, offset=2)
        pattern = [duty.active(slot) for slot in range(2, 12)]
        assert pattern == [True] * 3 + [False] * 7
        assert [duty.active(s) for s in range(12, 22)] == pattern


class TestClassification:
    def test_empty_plan_is_null(self):
        plan = FaultPlan()
        assert plan.is_null
        assert not plan.has_message_faults
        assert not plan.has_topology_faults
        assert plan.describe() == "no faults"

    def test_zero_down_duty_is_null(self):
        plan = FaultPlan(port_duty=(PortDutyCycle(0, 10, 0),))
        assert plan.is_null
        assert not plan.has_topology_faults

    def test_message_only_plan(self):
        plan = FaultPlan.message_loss(0.1)
        assert not plan.is_null
        assert plan.has_message_faults
        assert not plan.has_topology_faults

    def test_topology_only_plan(self):
        plan = FaultPlan(port_down=(PortDownInterval(0, 5, 9),))
        assert not plan.is_null
        assert plan.has_topology_faults
        assert not plan.has_message_faults

    @pytest.mark.parametrize("field", ["request_loss", "grant_loss", "accept_loss", "delay"])
    def test_probabilities_validated(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(**{field: -0.1})


class TestSpecRoundTrip:
    def test_empty_plan_flattens_to_empty(self):
        assert FaultPlan().to_spec() == ()

    def test_round_trip_preserves_plan(self):
        plan = FaultPlan(
            port_down=(PortDownInterval(1, 10, 20, "input"),),
            port_duty=(PortDutyCycle(2, 100, 7, 3),),
            link_down=(LinkOutage(0, 3, 5, 9),),
            request_loss=0.1,
            grant_loss=0.2,
            accept_loss=0.05,
            delay=0.01,
            crc_bursts=(CrcBurst(4, 0, 10, "gnt"),),
        )
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_from_spec_accepts_dict(self):
        plan = FaultPlan.from_spec({"request_loss": 0.3})
        assert plan.request_loss == 0.3

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_spec({"packet_loss": 0.1})

    def test_spec_is_hashable_and_deterministic(self):
        plan = FaultPlan.message_loss(0.25)
        assert hash(plan.to_spec()) == hash(plan.to_spec())
        assert plan.to_spec() == FaultPlan.message_loss(0.25).to_spec()


class TestAvailabilityHelper:
    def test_full_availability_is_null(self):
        assert FaultPlan.availability(8, 1.0).is_null

    def test_duty_fraction_matches_target(self):
        plan = FaultPlan.availability(4, 0.9, period=100)
        assert len(plan.port_duty) == 4
        for duty in plan.port_duty:
            assert duty.down == 10
            assert duty.period == 100

    def test_offsets_staggered(self):
        plan = FaultPlan.availability(4, 0.9, period=100)
        offsets = {duty.offset for duty in plan.port_duty}
        assert len(offsets) == 4

    def test_port_subset(self):
        plan = FaultPlan.availability(8, 0.5, period=10, ports=(2, 5))
        assert {duty.port for duty in plan.port_duty} == {2, 5}
