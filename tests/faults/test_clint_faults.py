"""Clint CRC bursts: every injected corruption is caught by CRC-16."""

from repro.clint.network import ClintNetwork
from repro.faults import CrcBurst, FaultInjector, FaultPlan
from repro.traffic.bernoulli import BernoulliUniform


def _run(plan, slots=60, n=8, load=0.6, seed=4):
    injector = FaultInjector(plan, n, seed=seed)
    network = ClintNetwork(n_nodes=n, seed=seed, injector=injector)
    stats = network.run(slots, bulk_traffic=BernoulliUniform(n, load, seed=seed))
    return network, stats


class TestCrcBursts:
    def test_cfg_burst_detected_and_counted(self):
        plan = FaultPlan(crc_bursts=(CrcBurst(2, 10, 30, "cfg"),))
        _, stats = _run(plan)
        assert stats.injected_corruptions == 20
        assert stats.cfg_crc_errors == 20
        assert stats.gnt_crc_errors == 0

    def test_gnt_burst_detected_and_counted(self):
        plan = FaultPlan(crc_bursts=(CrcBurst(5, 5, 25, "gnt"),))
        _, stats = _run(plan)
        assert stats.injected_corruptions == 20
        assert stats.gnt_crc_errors == 20
        assert stats.cfg_crc_errors == 0

    def test_every_corruption_surfaces_as_crc_error(self):
        """The acceptance property: CRC-16 catches 100% of single-bit
        burst corruptions on both channels."""
        plan = FaultPlan(
            crc_bursts=(
                CrcBurst(1, 0, 40, "cfg"),
                CrcBurst(3, 20, 50, "gnt"),
                CrcBurst(6, 10, 15, "cfg"),
            )
        )
        _, stats = _run(plan, slots=80)
        assert stats.injected_corruptions > 0
        assert (
            stats.cfg_crc_errors + stats.gnt_crc_errors
            == stats.injected_corruptions
        )

    def test_corrupted_grants_do_not_stop_traffic(self):
        plan = FaultPlan(crc_bursts=(CrcBurst(0, 0, 30, "gnt"),))
        _, stats = _run(plan, slots=100)
        assert stats.bulk_delivered > 0

    def test_no_bursts_no_injected_corruptions(self):
        _, stats = _run(FaultPlan())
        assert stats.injected_corruptions == 0
        assert stats.cfg_crc_errors == 0
        assert stats.gnt_crc_errors == 0

    def test_null_injector_matches_no_injector(self):
        n, seed, slots = 8, 4, 60
        traffic = BernoulliUniform(n, 0.6, seed=seed)
        plain = ClintNetwork(n_nodes=n, seed=seed).run(slots, bulk_traffic=traffic)
        traffic2 = BernoulliUniform(n, 0.6, seed=seed)
        injector = FaultInjector(FaultPlan(), n, seed=seed)
        faulted = ClintNetwork(n_nodes=n, seed=seed, injector=injector).run(
            slots, bulk_traffic=traffic2
        )
        assert plain.bulk_delivered == faulted.bulk_delivered
        assert plain.mean_bulk_latency == faulted.mean_bulk_latency
        assert faulted.injected_corruptions == 0
